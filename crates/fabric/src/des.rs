//! Message-level discrete-event network simulation.
//!
//! The max-min solver ([`crate::maxmin`]) answers *steady-state* bandwidth
//! questions; this module answers *timing* questions: when does each
//! message of a communication round arrive, given store-and-forward
//! serialization on every link, per-link FIFO queueing, and per-hop switch
//! latency. It drives the collective-algorithm models
//! ([`crate::collectives`]) and any experiment that needs message
//! completion times rather than sustained rates.
//!
//! The model is store-and-forward at message granularity: a message
//! occupies a link for `size / capacity`, then pays the hop latency to
//! reach the next link's queue. (Real Slingshot is cut-through at packet
//! granularity; for the ≤ MiB messages of the collectives studied here the
//! difference is a constant factor absorbed in the calibrated hop latency.)
//!
//! ## Data-oriented hot path
//!
//! The simulation core is laid out struct-of-arrays. Message paths live in
//! one flat [`LinkId`] pool addressed by `(offset, len)` spans
//! ([`PathSpan`]), message state (size, injection time, tag) in parallel
//! flat arrays ([`MessageBatch`]), and per-link FIFO state in a flat
//! `free_at` array indexed by the dense link id. An in-flight message is a
//! single 8-byte `(msg, cursor)` event; processing a hop touches four
//! arrays and performs one float divide — no pointer chasing, no hashing,
//! and no allocation. [`simulate`] picks the scheduler by batch size
//! ([`auto_queue_kind`]): the calendar queue
//! ([`frontier_sim_core::engine::CalendarQueue`]) for large batches, the
//! binary heap below [`CALENDAR_MIN_HOP_EVENTS`] hop events where the
//! calendar's bucket bookkeeping costs more than it saves. Either
//! scheduler is selectable explicitly via [`simulate_with`] for parity
//! testing and benchmarking.
//!
//! The pre-rewrite per-`Message` implementation is kept verbatim as
//! [`simulate_reference`]; property tests pin the SoA core to it
//! delivery-for-delivery.

use crate::topology::{Flow, LinkId, Topology};
use frontier_sim_core::engine::CalendarQueue;
use frontier_sim_core::metrics;
use frontier_sim_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Timing parameters of the message simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesConfig {
    /// Per-hop propagation + switch pipeline latency.
    pub hop_latency: SimTime,
    /// Sender-side software/NIC overhead per message.
    pub send_overhead: SimTime,
    /// Receiver-side overhead per message.
    pub recv_overhead: SimTime,
}

impl Default for DesConfig {
    fn default() -> Self {
        // Consistent with the LatencyModel calibration: 2 x 0.95 us NIC
        // overhead and 0.175 us per switch.
        DesConfig {
            hop_latency: SimTime::from_nanos(175),
            send_overhead: SimTime::from_nanos(950),
            recv_overhead: SimTime::from_nanos(950),
        }
    }
}

/// A message to inject: a routed path plus a size and an injection time.
///
/// This is the boxed, per-message representation used by the reference
/// simulation ([`simulate_reference`]) and as a convenience input to
/// [`MessageBatch::from_messages`]. The hot path does not allocate these:
/// batch call sites intern paths into a [`MessageBatch`] directly.
#[derive(Debug, Clone)]
pub struct Message {
    /// Routed path (directed links, in order), shared between messages.
    pub path: Arc<[LinkId]>,
    pub size: Bytes,
    pub inject_at: SimTime,
    /// Caller-defined tag returned with the delivery.
    pub tag: u64,
}

impl Message {
    /// Build a message over an already-routed flow (copies the path once;
    /// reuse the returned message's `path` — or [`Message::on`] — to share
    /// it across a batch).
    pub fn over(flow: &Flow, size: Bytes, inject_at: SimTime, tag: u64) -> Self {
        Message {
            path: Arc::from(&flow.path[..]),
            size,
            inject_at,
            tag,
        }
    }

    /// Build a message over an already-shared path without copying it.
    pub fn on(path: Arc<[LinkId]>, size: Bytes, inject_at: SimTime, tag: u64) -> Self {
        Message {
            path,
            size,
            inject_at,
            tag,
        }
    }
}

/// A handle to a path interned in a [`MessageBatch`]'s flat link pool:
/// `(offset, len)` into the pool, 8 bytes, freely copyable. Spans stay
/// valid across [`MessageBatch::clear`], which makes them ideal cache
/// values for call sites that route once and inject many times (see
/// [`crate::collectives`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSpan {
    off: u32,
    len: u32,
}

impl PathSpan {
    /// Number of links in the path.
    pub fn len(self) -> u32 {
        self.len
    }

    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// A struct-of-arrays batch of messages: one flat [`LinkId`] pool holding
/// every distinct routed path once, plus parallel per-message arrays for
/// the path span, size, injection time, and tag.
///
/// Compared to a `Vec<Message>`, a batch of *n* messages over *p* distinct
/// paths costs *p* pool writes plus 4 flat-array pushes per message —
/// no per-message `Arc` allocation or refcounting — and the simulation
/// core reads it with dense indexed loads only.
///
/// [`MessageBatch::clear`] drops the messages but keeps the interned pool,
/// so a call site that repeatedly injects rounds over the same routes
/// (collectives, mpiGraph windows) reuses both the path memory and the
/// [`PathSpan`] handles across rounds.
#[derive(Debug, Clone, Default)]
pub struct MessageBatch {
    /// Flat pool of directed links; each message's path is one contiguous
    /// slice of this pool.
    path_pool: Vec<LinkId>,
    /// Per-message span start in `path_pool`.
    span_off: Vec<u32>,
    /// Per-message span end (exclusive) in `path_pool`.
    span_end: Vec<u32>,
    sizes: Vec<Bytes>,
    inject_at: Vec<SimTime>,
    tags: Vec<u64>,
}

impl MessageBatch {
    pub fn new() -> Self {
        Self::default()
    }

    /// A batch pre-sized for `messages` messages over `pool_links` total
    /// pooled path links.
    pub fn with_capacity(messages: usize, pool_links: usize) -> Self {
        MessageBatch {
            path_pool: Vec::with_capacity(pool_links),
            span_off: Vec::with_capacity(messages),
            span_end: Vec::with_capacity(messages),
            sizes: Vec::with_capacity(messages),
            inject_at: Vec::with_capacity(messages),
            tags: Vec::with_capacity(messages),
        }
    }

    /// Copy `path` into the pool and return its span. Each call appends —
    /// callers that reuse a route should intern once and reuse the span.
    ///
    /// # Panics
    /// Panics on an empty path: a message must traverse at least one link.
    pub fn intern(&mut self, path: &[LinkId]) -> PathSpan {
        assert!(!path.is_empty(), "message with empty path");
        let off = u32::try_from(self.path_pool.len())
            // simlint::allow(panic-in-lib): a >4-billion-link path pool is unrepresentable workload, not a recoverable error
            .expect("path pool exceeds u32 index space");
        self.path_pool.extend_from_slice(path);
        PathSpan {
            off,
            len: path.len() as u32,
        }
    }

    /// Append a message over an already-interned span.
    pub fn push(&mut self, span: PathSpan, size: Bytes, inject_at: SimTime, tag: u64) {
        debug_assert!((span.off + span.len) as usize <= self.path_pool.len());
        self.span_off.push(span.off);
        self.span_end.push(span.off + span.len);
        self.sizes.push(size);
        self.inject_at.push(inject_at);
        self.tags.push(tag);
    }

    /// Intern `path` and append one message over it.
    pub fn push_path(&mut self, path: &[LinkId], size: Bytes, inject_at: SimTime, tag: u64) {
        let span = self.intern(path);
        self.push(span, size, inject_at, tag);
    }

    /// Build a batch from boxed messages (compatibility shim; paths are
    /// interned per message, without deduplication).
    pub fn from_messages(messages: &[Message]) -> Self {
        let pool: usize = messages.iter().map(|m| m.path.len()).sum();
        let mut b = MessageBatch::with_capacity(messages.len(), pool);
        for m in messages {
            b.push_path(&m.path, m.size, m.inject_at, m.tag);
        }
        b
    }

    /// Number of messages in the batch.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Total links held in the path pool (across all interned paths).
    pub fn pool_len(&self) -> usize {
        self.path_pool.len()
    }

    /// Drop all messages but keep the interned path pool, so previously
    /// returned [`PathSpan`]s remain valid for the next round.
    pub fn clear(&mut self) {
        self.span_off.clear();
        self.span_end.clear();
        self.sizes.clear();
        self.inject_at.clear();
        self.tags.clear();
    }

    /// The routed path of message `i`.
    pub fn path(&self, i: usize) -> &[LinkId] {
        &self.path_pool[self.span_off[i] as usize..self.span_end[i] as usize]
    }

    /// The caller tag of message `i`.
    pub fn tag(&self, i: usize) -> u64 {
        self.tags[i]
    }

    /// Total hop events this batch will generate (sum of path lengths).
    pub fn total_hops(&self) -> u64 {
        self.span_off
            .iter()
            .zip(&self.span_end)
            .map(|(&o, &e)| u64::from(e - o))
            .sum()
    }

    /// The flat link pool (crate-internal: the parallel core reads the
    /// arenas directly instead of re-slicing per message).
    pub(crate) fn pool(&self) -> &[LinkId] {
        &self.path_pool
    }

    /// Per-message span starts into the pool.
    pub(crate) fn span_offs(&self) -> &[u32] {
        &self.span_off
    }

    /// Per-message span ends (exclusive) into the pool.
    pub(crate) fn span_ends(&self) -> &[u32] {
        &self.span_end
    }

    pub(crate) fn sizes(&self) -> &[Bytes] {
        &self.sizes
    }

    pub(crate) fn inject_ats(&self) -> &[SimTime] {
        &self.inject_at
    }

    pub(crate) fn tags(&self) -> &[u64] {
        &self.tags
    }
}

/// Delivery record for one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    pub tag: u64,
    pub arrival: SimTime,
}

/// DES event: message `msg` has reached the link at absolute pool index
/// `cursor` of its path. 8 bytes; the whole in-flight state of a message.
#[derive(Debug, Clone, Copy)]
struct Hop {
    msg: u32,
    cursor: u32,
}

/// Which event scheduler drives the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Calendar queue: near-O(1) per event in DES steady state.
    Calendar,
    /// Binary-heap reference scheduler (same deterministic order).
    BinaryHeap,
}

/// Hop-event count at which the calendar queue starts beating the binary
/// heap. Below it, the calendar's bucket bookkeeping and width
/// recalibration cost more than `log n` heap sifts on a near-empty queue.
///
/// The crossover is bracketed by BENCH_des.json: at 1,232 hop events
/// (64 endpoints) the calendar runs ~1.3× *slower* than the heap
/// (98 µs vs 75 µs), while at 22,660 hop events (1,024 endpoints) it is
/// already 2.1× faster (1.04 ms vs 2.16 ms) and 2.7× faster at full
/// machine. The threshold sits between those measured points; a batch
/// whose total hop count reaches it is firmly in the calendar's regime.
pub const CALENDAR_MIN_HOP_EVENTS: u64 = 8_192;

/// The scheduler [`simulate`] picks for `batch`: the binary heap below
/// [`CALENDAR_MIN_HOP_EVENTS`] total hop events, the calendar queue at or
/// above it. Purely size-based and deterministic — and both schedulers
/// deliver bit-identical results, so the pick can never change an answer,
/// only the wall-clock.
pub fn auto_queue_kind(batch: &MessageBatch) -> QueueKind {
    if batch.total_hops() >= CALENDAR_MIN_HOP_EVENTS {
        QueueKind::Calendar
    } else {
        QueueKind::BinaryHeap
    }
}

/// Simulate the delivery of a batch of messages over the topology.
///
/// Links are FIFO servers: a message begins serialization when both it has
/// fully arrived at the link's input and the link is free. Returns one
/// [`Delivery`] per message, in input order. The scheduler is auto-selected
/// by batch size ([`auto_queue_kind`]); [`simulate_with`] selects it
/// explicitly.
pub fn simulate(topo: &Topology, cfg: &DesConfig, batch: &MessageBatch) -> Vec<Delivery> {
    simulate_with(topo, cfg, batch, auto_queue_kind(batch))
}

/// [`simulate`] with an explicit scheduler choice. Both schedulers deliver
/// events in the identical `(time, insertion seq)` order, so the results
/// are bit-identical; the choice only affects wall-clock speed.
pub fn simulate_with(
    topo: &Topology,
    cfg: &DesConfig,
    batch: &MessageBatch,
    queue: QueueKind,
) -> Vec<Delivery> {
    let arrivals = match queue {
        QueueKind::Calendar => {
            let mut sim = Simulator::over(CalendarQueue::with_capacity(batch.len()));
            inject_all(cfg, batch, &mut sim);
            if let Some(m) = metrics::active() {
                // Calendar health telemetry: pending events per bucket at
                // full load (just after the injection burst is queued).
                let h = m.histogram("fabric.des.calendar.bucket_occupancy", 0.0, 32.0, 16);
                sim.queue().for_each_occupancy(|n| h.record(n as f64));
            }
            run_hops(topo, cfg, batch, &mut sim)
        }
        QueueKind::BinaryHeap => {
            let mut sim = Simulator::over(EventQueue::with_capacity(batch.len()));
            inject_all(cfg, batch, &mut sim);
            run_hops(topo, cfg, batch, &mut sim)
        }
    };

    if let Some(m) = metrics::active() {
        m.counter("fabric.des.messages").add(batch.len() as u64);
        m.counter("fabric.des.events").add(batch.total_hops());
        let makespan = arrivals.iter().fold(SimTime::ZERO, |a, &t| a.max(t));
        m.max_gauge("fabric.des.makespan_ns_max")
            .observe(makespan.as_nanos_f64());
    }

    arrivals
        .into_iter()
        .zip(&batch.tags)
        .map(|(arrival, &tag)| Delivery { tag, arrival })
        .collect()
}

/// Schedule the injection burst: every message is queued up front, and
/// each delivery schedules at most one follow-up hop, so the queue never
/// holds more than `batch.len()` events — both schedulers are pre-sized
/// for exactly that population.
fn inject_all<Q: EventScheduler<Hop>>(
    cfg: &DesConfig,
    batch: &MessageBatch,
    sim: &mut Simulator<Hop, Q>,
) {
    for i in 0..batch.len() {
        assert!(
            batch.span_end[i] > batch.span_off[i],
            "message with empty path"
        );
        sim.schedule_at(
            batch.inject_at[i] + cfg.send_overhead,
            Hop {
                msg: i as u32,
                cursor: batch.span_off[i],
            },
        );
    }
}

/// The hot loop, generic over the scheduler: drain the event queue,
/// serializing each message across each link of its span in FIFO order.
/// Per event: four dense array accesses and one float divide.
fn run_hops<Q: EventScheduler<Hop>>(
    topo: &Topology,
    cfg: &DesConfig,
    batch: &MessageBatch,
    sim: &mut Simulator<Hop, Q>,
) -> Vec<SimTime> {
    // Flat per-link state, indexed by the dense LinkId. The bytes-per-sec
    // capacities are pre-converted so serialization time is one divide
    // (bit-identical to `Bandwidth::time_for`).
    let mut free_at = vec![SimTime::ZERO; topo.num_links() as usize];
    let cap_bps: Vec<f64> = topo
        .links()
        .iter()
        .map(|l| l.capacity.as_bytes_per_sec())
        .collect();
    let size_f64: Vec<f64> = batch.sizes.iter().map(|s| s.as_f64()).collect();
    let mut arrivals = vec![SimTime::MAX; batch.len()];

    let pool = &batch.path_pool[..];
    let span_end = &batch.span_end[..];
    sim.run(|sim, t, Hop { msg, cursor }| {
        let m = msg as usize;
        let link = pool[cursor as usize].0 as usize;
        let start = t.max(free_at[link]);
        let done = start + SimTime::from_secs_f64(size_f64[m] / cap_bps[link]);
        free_at[link] = done;
        let next = cursor + 1;
        if next < span_end[m] {
            sim.schedule_at(done + cfg.hop_latency, Hop { msg, cursor: next });
        } else {
            arrivals[m] = done + cfg.recv_overhead;
        }
        true
    });

    arrivals
}

/// The pre-rewrite per-`Message` simulation, kept verbatim as the oracle
/// the SoA core is property-tested against (same pattern as
/// `solve_maxmin_reference`). Pure — records no metrics.
pub fn simulate_reference(topo: &Topology, cfg: &DesConfig, messages: &[Message]) -> Vec<Delivery> {
    /// Reference DES event: message `msg` arriving at hop `hop` of its path.
    #[derive(Debug, Clone, Copy)]
    struct RefHop {
        msg: usize,
        hop: usize,
    }

    let mut link_free = vec![SimTime::ZERO; topo.num_links() as usize];
    let mut arrivals = vec![SimTime::MAX; messages.len()];
    let mut sim: Simulator<RefHop> = Simulator::with_capacity(messages.len());

    for (i, m) in messages.iter().enumerate() {
        assert!(!m.path.is_empty(), "message with empty path");
        sim.schedule_at(m.inject_at + cfg.send_overhead, RefHop { msg: i, hop: 0 });
    }

    sim.run(|sim, t, RefHop { msg, hop }| {
        let m = &messages[msg];
        let link = m.path[hop];
        let cap = topo.link(link).capacity;
        let start = t.max(link_free[link.0 as usize]);
        let done = start + cap.time_for(m.size);
        link_free[link.0 as usize] = done;
        if hop + 1 < m.path.len() {
            sim.schedule_at(done + cfg.hop_latency, RefHop { msg, hop: hop + 1 });
        } else {
            arrivals[msg] = done + cfg.recv_overhead;
        }
        true
    });

    messages
        .iter()
        .enumerate()
        .map(|(i, m)| Delivery {
            tag: m.tag,
            arrival: arrivals[i],
        })
        .collect()
}

/// Convenience: the completion time of the whole batch.
pub fn makespan(topo: &Topology, cfg: &DesConfig, batch: &MessageBatch) -> SimTime {
    simulate(topo, cfg, batch)
        .iter()
        .map(|d| d.arrival)
        .fold(SimTime::ZERO, SimTime::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::SwitchId;

    /// Two endpoints on one switch, 10 GB/s links.
    fn pair() -> (Topology, Vec<LinkId>) {
        let mut t = Topology::new();
        t.add_switches(1);
        let a = t.add_endpoint(SwitchId(0), Bandwidth::gb_s(10.0));
        let b = t.add_endpoint(SwitchId(0), Bandwidth::gb_s(10.0));
        let path = vec![t.injection_link(a), t.ejection_link(b)];
        (t, path)
    }

    #[test]
    fn single_message_time_decomposes() {
        let (t, path) = pair();
        let cfg = DesConfig::default();
        let size = Bytes::mib(1);
        let mut batch = MessageBatch::new();
        batch.push_path(&path, size, SimTime::ZERO, 0);
        let d = simulate(&t, &cfg, &batch);
        // send + 2 serializations + 1 hop + recv.
        let ser = Bandwidth::gb_s(10.0).time_for(size);
        let expect = cfg.send_overhead + ser + cfg.hop_latency + ser + cfg.recv_overhead;
        assert_eq!(d[0].arrival, expect);
    }

    #[test]
    fn fifo_queueing_serializes_same_link() {
        let (t, path) = pair();
        let cfg = DesConfig::default();
        let size = Bytes::mib(8);
        let mut batch = MessageBatch::new();
        let span = batch.intern(&path);
        for i in 0..3 {
            batch.push(span, size, SimTime::ZERO, i);
        }
        let d = simulate(&t, &cfg, &batch);
        let ser = Bandwidth::gb_s(10.0).time_for(size).as_secs_f64();
        // Arrivals spaced ~one serialization apart on the shared link.
        let a: Vec<f64> = d.iter().map(|x| x.arrival.as_secs_f64()).collect();
        assert!((a[1] - a[0] - ser).abs() < ser * 0.01, "{a:?}");
        assert!((a[2] - a[1] - ser).abs() < ser * 0.01, "{a:?}");
    }

    #[test]
    fn disjoint_paths_run_in_parallel() {
        let mut t = Topology::new();
        t.add_switches(1);
        let mut batch = MessageBatch::new();
        let mut first = MessageBatch::new();
        for i in 0..4 {
            let a = t.add_endpoint(SwitchId(0), Bandwidth::gb_s(10.0));
            let b = t.add_endpoint(SwitchId(0), Bandwidth::gb_s(10.0));
            let path = [t.injection_link(a), t.ejection_link(b)];
            batch.push_path(&path, Bytes::mib(4), SimTime::ZERO, 0);
            if i == 0 {
                first.push_path(&path, Bytes::mib(4), SimTime::ZERO, 0);
            }
        }
        let cfg = DesConfig::default();
        let all = makespan(&t, &cfg, &batch);
        let single = makespan(&t, &cfg, &first);
        assert_eq!(all, single, "disjoint transfers should not interfere");
    }

    #[test]
    fn later_injection_delays_delivery() {
        let (t, path) = pair();
        let cfg = DesConfig::default();
        let run = |at| {
            let mut b = MessageBatch::new();
            b.push_path(&path, Bytes::kib(64), at, 0);
            simulate(&t, &cfg, &b)
        };
        let d0 = run(SimTime::ZERO);
        let d1 = run(SimTime::from_micros(100));
        let gap = d1[0].arrival.as_micros_f64() - d0[0].arrival.as_micros_f64();
        assert!((gap - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_message_takes_longer() {
        let (t, path) = pair();
        let cfg = DesConfig::default();
        let run = |size| {
            let mut b = MessageBatch::new();
            b.push_path(&path, size, SimTime::ZERO, 0);
            simulate(&t, &cfg, &b)
        };
        let small = run(Bytes::kib(8));
        let large = run(Bytes::mib(8));
        assert!(large[0].arrival > small[0].arrival);
    }

    #[test]
    #[should_panic(expected = "empty path")]
    fn empty_path_rejected() {
        let mut b = MessageBatch::new();
        b.push_path(&[], Bytes::kib(1), SimTime::ZERO, 0);
    }

    #[test]
    fn heap_and_calendar_agree_exactly() {
        let (t, path) = pair();
        let cfg = DesConfig::default();
        let mut batch = MessageBatch::new();
        let span = batch.intern(&path);
        for i in 0..64u64 {
            batch.push(
                span,
                Bytes::kib(1 + (i * 37) % 512),
                SimTime::from_nanos((i * 13) % 5),
                i,
            );
        }
        let cal = simulate_with(&t, &cfg, &batch, QueueKind::Calendar);
        let heap = simulate_with(&t, &cfg, &batch, QueueKind::BinaryHeap);
        assert_eq!(cal, heap);
    }

    #[test]
    fn auto_select_pins_the_crossover() {
        // Below the threshold (the BENCH_des.json "small" regime, 1,232
        // hop events): the heap. At/above it (the "subset" regime, 22,660
        // hop events): the calendar.
        let (_, path) = pair();
        let mut small = MessageBatch::new();
        let span = small.intern(&path);
        let below = CALENDAR_MIN_HOP_EVENTS / path.len() as u64 - 1;
        for i in 0..below {
            small.push(span, Bytes::kib(4), SimTime::ZERO, i);
        }
        assert!(small.total_hops() < CALENDAR_MIN_HOP_EVENTS);
        assert_eq!(auto_queue_kind(&small), QueueKind::BinaryHeap);

        let mut large = small.clone();
        for i in 0..path.len() as u64 {
            large.push(span, Bytes::kib(4), SimTime::ZERO, below + i);
        }
        assert!(large.total_hops() >= CALENDAR_MIN_HOP_EVENTS);
        assert_eq!(auto_queue_kind(&large), QueueKind::Calendar);
    }

    #[test]
    fn auto_select_cannot_change_results() {
        let (t, path) = pair();
        let cfg = DesConfig::default();
        let mut batch = MessageBatch::new();
        let span = batch.intern(&path);
        for i in 0..48u64 {
            batch.push(span, Bytes::kib(1 + i % 7), SimTime::from_nanos(i % 4), i);
        }
        let auto = simulate(&t, &cfg, &batch);
        let cal = simulate_with(&t, &cfg, &batch, QueueKind::Calendar);
        let heap = simulate_with(&t, &cfg, &batch, QueueKind::BinaryHeap);
        assert_eq!(auto, cal);
        assert_eq!(auto, heap);
    }

    #[test]
    fn soa_matches_reference_oracle() {
        let (t, path) = pair();
        let cfg = DesConfig::default();
        let shared: Arc<[LinkId]> = path.clone().into();
        let msgs: Vec<Message> = (0..32u64)
            .map(|i| {
                Message::on(
                    shared.clone(),
                    Bytes::kib(1 + (i * 91) % 300),
                    SimTime::from_nanos(i % 3),
                    i,
                )
            })
            .collect();
        let oracle = simulate_reference(&t, &cfg, &msgs);
        let soa = simulate(&t, &cfg, &MessageBatch::from_messages(&msgs));
        assert_eq!(soa, oracle);
    }

    #[test]
    fn clear_keeps_interned_spans_valid() {
        let (t, path) = pair();
        let cfg = DesConfig::default();
        let mut batch = MessageBatch::new();
        let span = batch.intern(&path);
        batch.push(span, Bytes::kib(64), SimTime::ZERO, 1);
        let first = simulate(&t, &cfg, &batch);
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.pool_len(), path.len(), "pool survives clear");
        batch.push(span, Bytes::kib(64), SimTime::ZERO, 2);
        let second = simulate(&t, &cfg, &batch);
        assert_eq!(first[0].arrival, second[0].arrival);
        assert_eq!(second[0].tag, 2);
    }
}
