//! Message-level discrete-event network simulation.
//!
//! The max-min solver ([`crate::maxmin`]) answers *steady-state* bandwidth
//! questions; this module answers *timing* questions: when does each
//! message of a communication round arrive, given store-and-forward
//! serialization on every link, per-link FIFO queueing, and per-hop switch
//! latency. It drives the collective-algorithm models
//! ([`crate::collectives`]) and any experiment that needs message
//! completion times rather than sustained rates.
//!
//! The model is store-and-forward at message granularity: a message
//! occupies a link for `size / capacity`, then pays the hop latency to
//! reach the next link's queue. (Real Slingshot is cut-through at packet
//! granularity; for the ≤ MiB messages of the collectives studied here the
//! difference is a constant factor absorbed in the calibrated hop latency.)

use crate::topology::{Flow, LinkId, Topology};
use frontier_sim_core::metrics;
use frontier_sim_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Timing parameters of the message simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesConfig {
    /// Per-hop propagation + switch pipeline latency.
    pub hop_latency: SimTime,
    /// Sender-side software/NIC overhead per message.
    pub send_overhead: SimTime,
    /// Receiver-side overhead per message.
    pub recv_overhead: SimTime,
}

impl Default for DesConfig {
    fn default() -> Self {
        // Consistent with the LatencyModel calibration: 2 x 0.95 us NIC
        // overhead and 0.175 us per switch.
        DesConfig {
            hop_latency: SimTime::from_nanos(175),
            send_overhead: SimTime::from_nanos(950),
            recv_overhead: SimTime::from_nanos(950),
        }
    }
}

/// A message to inject: a routed path plus a size and an injection time.
///
/// The path is shared (`Arc<[LinkId]>`) rather than owned: collective
/// rounds inject many messages over the same handful of routed paths, and
/// cloning a `Vec<LinkId>` per message was the dominant allocation of the
/// DES call sites. Cloning a `Message` is now two pointer-sized copies
/// plus a refcount bump.
#[derive(Debug, Clone)]
pub struct Message {
    /// Routed path (directed links, in order), shared between messages.
    pub path: Arc<[LinkId]>,
    pub size: Bytes,
    pub inject_at: SimTime,
    /// Caller-defined tag returned with the delivery.
    pub tag: u64,
}

impl Message {
    /// Build a message over an already-routed flow (copies the path once;
    /// reuse the returned message's `path` — or [`Message::on`] — to share
    /// it across a batch).
    pub fn over(flow: &Flow, size: Bytes, inject_at: SimTime, tag: u64) -> Self {
        Message {
            path: Arc::from(&flow.path[..]),
            size,
            inject_at,
            tag,
        }
    }

    /// Build a message over an already-shared path without copying it.
    pub fn on(path: Arc<[LinkId]>, size: Bytes, inject_at: SimTime, tag: u64) -> Self {
        Message {
            path,
            size,
            inject_at,
            tag,
        }
    }
}

/// Delivery record for one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    pub tag: u64,
    pub arrival: SimTime,
}

/// DES events: a message (by index) arriving at hop `hop` of its path.
#[derive(Debug, Clone, Copy)]
struct Hop {
    msg: usize,
    hop: usize,
}

/// Simulate the delivery of a batch of messages over the topology.
///
/// Links are FIFO servers: a message begins serialization when both it has
/// fully arrived at the link's input and the link is free. Returns one
/// [`Delivery`] per message, in input order.
pub fn simulate(topo: &Topology, cfg: &DesConfig, messages: &[Message]) -> Vec<Delivery> {
    let mut link_free = vec![SimTime::ZERO; topo.num_links() as usize];
    let mut arrivals = vec![SimTime::MAX; messages.len()];
    // Every message is scheduled up front and each delivery schedules at
    // most one follow-up hop, so the queue never holds more than
    // `messages.len()` events: pre-size the heap once.
    let mut sim: Simulator<Hop> = Simulator::with_capacity(messages.len());

    for (i, m) in messages.iter().enumerate() {
        assert!(!m.path.is_empty(), "message with empty path");
        sim.schedule_at(m.inject_at + cfg.send_overhead, Hop { msg: i, hop: 0 });
    }

    let mut hop_events = 0u64;
    sim.run(|sim, t, Hop { msg, hop }| {
        hop_events += 1;
        let m = &messages[msg];
        let link = m.path[hop];
        let cap = topo.link(link).capacity;
        let start = t.max(link_free[link.0 as usize]);
        let done = start + cap.time_for(m.size);
        link_free[link.0 as usize] = done;
        if hop + 1 < m.path.len() {
            sim.schedule_at(done + cfg.hop_latency, Hop { msg, hop: hop + 1 });
        } else {
            arrivals[msg] = done + cfg.recv_overhead;
        }
        true
    });

    if let Some(m) = metrics::active() {
        m.counter("fabric.des.messages").add(messages.len() as u64);
        m.counter("fabric.des.events").add(hop_events);
        let makespan = arrivals.iter().fold(SimTime::ZERO, |a, &t| a.max(t));
        m.max_gauge("fabric.des.makespan_ns_max")
            .observe(makespan.as_nanos_f64());
    }

    messages
        .iter()
        .enumerate()
        .map(|(i, m)| Delivery {
            tag: m.tag,
            arrival: arrivals[i],
        })
        .collect()
}

/// Convenience: the completion time of the whole batch.
pub fn makespan(topo: &Topology, cfg: &DesConfig, messages: &[Message]) -> SimTime {
    simulate(topo, cfg, messages)
        .iter()
        .map(|d| d.arrival)
        .fold(SimTime::ZERO, SimTime::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::SwitchId;

    /// Two endpoints on one switch, 10 GB/s links.
    fn pair() -> (Topology, Arc<[LinkId]>) {
        let mut t = Topology::new();
        t.add_switches(1);
        let a = t.add_endpoint(SwitchId(0), Bandwidth::gb_s(10.0));
        let b = t.add_endpoint(SwitchId(0), Bandwidth::gb_s(10.0));
        let path = vec![t.injection_link(a), t.ejection_link(b)].into();
        (t, path)
    }

    #[test]
    fn single_message_time_decomposes() {
        let (t, path) = pair();
        let cfg = DesConfig::default();
        let size = Bytes::mib(1);
        let msgs = [Message {
            path: path.clone(),
            size,
            inject_at: SimTime::ZERO,
            tag: 0,
        }];
        let d = simulate(&t, &cfg, &msgs);
        // send + 2 serializations + 1 hop + recv.
        let ser = Bandwidth::gb_s(10.0).time_for(size);
        let expect = cfg.send_overhead + ser + cfg.hop_latency + ser + cfg.recv_overhead;
        assert_eq!(d[0].arrival, expect);
    }

    #[test]
    fn fifo_queueing_serializes_same_link() {
        let (t, path) = pair();
        let cfg = DesConfig::default();
        let size = Bytes::mib(8);
        let msgs: Vec<Message> = (0..3)
            .map(|i| Message {
                path: path.clone(),
                size,
                inject_at: SimTime::ZERO,
                tag: i,
            })
            .collect();
        let d = simulate(&t, &cfg, &msgs);
        let ser = Bandwidth::gb_s(10.0).time_for(size).as_secs_f64();
        // Arrivals spaced ~one serialization apart on the shared link.
        let a: Vec<f64> = d.iter().map(|x| x.arrival.as_secs_f64()).collect();
        assert!((a[1] - a[0] - ser).abs() < ser * 0.01, "{a:?}");
        assert!((a[2] - a[1] - ser).abs() < ser * 0.01, "{a:?}");
    }

    #[test]
    fn disjoint_paths_run_in_parallel() {
        let mut t = Topology::new();
        t.add_switches(1);
        let mut paths: Vec<Arc<[LinkId]>> = vec![];
        for _ in 0..4 {
            let a = t.add_endpoint(SwitchId(0), Bandwidth::gb_s(10.0));
            let b = t.add_endpoint(SwitchId(0), Bandwidth::gb_s(10.0));
            paths.push(vec![t.injection_link(a), t.ejection_link(b)].into());
        }
        let cfg = DesConfig::default();
        let msgs: Vec<Message> = paths
            .iter()
            .map(|p| Message {
                path: p.clone(),
                size: Bytes::mib(4),
                inject_at: SimTime::ZERO,
                tag: 0,
            })
            .collect();
        let batch = makespan(&t, &cfg, &msgs);
        let single = makespan(&t, &cfg, &msgs[..1]);
        assert_eq!(batch, single, "disjoint transfers should not interfere");
    }

    #[test]
    fn later_injection_delays_delivery() {
        let (t, path) = pair();
        let cfg = DesConfig::default();
        let mk = |at| Message {
            path: path.clone(),
            size: Bytes::kib(64),
            inject_at: at,
            tag: 0,
        };
        let d0 = simulate(&t, &cfg, &[mk(SimTime::ZERO)]);
        let d1 = simulate(&t, &cfg, &[mk(SimTime::from_micros(100))]);
        let gap = d1[0].arrival.as_micros_f64() - d0[0].arrival.as_micros_f64();
        assert!((gap - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_message_takes_longer() {
        let (t, path) = pair();
        let cfg = DesConfig::default();
        let mk = |size| Message {
            path: path.clone(),
            size,
            inject_at: SimTime::ZERO,
            tag: 0,
        };
        let small = simulate(&t, &cfg, &[mk(Bytes::kib(8))]);
        let large = simulate(&t, &cfg, &[mk(Bytes::mib(8))]);
        assert!(large[0].arrival > small[0].arrival);
    }

    #[test]
    #[should_panic(expected = "empty path")]
    fn empty_path_rejected() {
        let (t, _) = pair();
        simulate(
            &t,
            &DesConfig::default(),
            &[Message {
                path: Vec::new().into(),
                size: Bytes::kib(1),
                inject_at: SimTime::ZERO,
                tag: 0,
            }],
        );
    }
}
