//! Traffic-pattern generators and the analytic all-to-all model.
//!
//! The pairwise patterns produce explicit flow sets for the max-min solver;
//! all-to-all at Frontier scale (37,888² flows) is evaluated analytically
//! from per-link load factors instead, the standard technique for uniform
//! traffic matrices.

use crate::dragonfly::Dragonfly;
use crate::topology::EndpointId;
use frontier_sim_core::prelude::*;

/// A random fixed-point-free pairing of `n` endpoints (the mpiGraph
/// measurement round: every NIC sends to exactly one partner and receives
/// from exactly one).
pub fn mpigraph_pairs(n: usize, rng: &mut StreamRng) -> Vec<(EndpointId, EndpointId)> {
    let mut pairs = Vec::with_capacity(n);
    pairs.extend(
        rng.pairing(n)
            .into_iter()
            .enumerate()
            .map(|(s, d)| (EndpointId(s as u32), EndpointId(d as u32))),
    );
    pairs
}

/// `fan` sources all sending to one destination (incast). Sources are drawn
/// without replacement from `pool`.
pub fn incast_pairs(
    pool: &[EndpointId],
    dst: EndpointId,
    fan: usize,
    rng: &mut StreamRng,
) -> Vec<(EndpointId, EndpointId)> {
    assert!(fan <= pool.len());
    let mut candidates: Vec<EndpointId> = Vec::with_capacity(pool.len());
    candidates.extend(pool.iter().copied().filter(|&e| e != dst));
    rng.shuffle(&mut candidates);
    let mut pairs = Vec::with_capacity(fan);
    pairs.extend(candidates.into_iter().take(fan).map(|s| (s, dst)));
    pairs
}

/// One root sending to `fan` destinations (broadcast leaf traffic).
pub fn broadcast_pairs(
    pool: &[EndpointId],
    root: EndpointId,
    fan: usize,
    rng: &mut StreamRng,
) -> Vec<(EndpointId, EndpointId)> {
    assert!(fan <= pool.len());
    let mut candidates: Vec<EndpointId> = Vec::with_capacity(pool.len());
    candidates.extend(pool.iter().copied().filter(|&e| e != root));
    rng.shuffle(&mut candidates);
    let mut pairs = Vec::with_capacity(fan);
    pairs.extend(candidates.into_iter().take(fan).map(|d| (root, d)));
    pairs
}

/// A ring of pairwise flows over `pool` (each endpoint sends to the next) —
/// an all-to-all sub-round as GPCNeT's congestor uses.
pub fn ring_pairs(pool: &[EndpointId]) -> Vec<(EndpointId, EndpointId)> {
    assert!(pool.len() >= 2);
    let mut pairs = Vec::with_capacity(pool.len());
    pairs.extend((0..pool.len()).map(|i| (pool[i], pool[(i + 1) % pool.len()])));
    pairs
}

/// Result of the analytic uniform all-to-all analysis.
#[derive(Debug, Clone, Copy)]
pub struct AllToAllThroughput {
    /// Sustainable uniform injection rate per endpoint (NIC).
    pub per_endpoint: Bandwidth,
    /// Per node (NICs × per_endpoint).
    pub per_node: Bandwidth,
    /// Which resource binds: true if the global pipes, false if injection.
    pub pipe_bound: bool,
}

/// Sustainable per-endpoint rate of a full-machine uniform all-to-all on a
/// dragonfly, with a fraction `nonminimal_fraction` of traffic detoured
/// through an intermediate group (§4.2.2: under saturating all-to-all,
/// adaptive routing detours nearly everything, halving effective global
/// bandwidth; the paper measures ~30–32 GB/s/node at 8 PPN).
pub fn all_to_all_throughput(df: &Dragonfly, nonminimal_fraction: f64) -> AllToAllThroughput {
    assert!((0.0..=1.0).contains(&nonminimal_fraction));
    let p = df.params();
    let g = p.groups as f64;
    let n = p.total_endpoints() as f64;
    let epg = p.endpoints_per_group() as f64;

    // Fraction of a uniform endpoint's traffic that leaves its group.
    let inter_frac = (n - epg) / (n - 1.0);

    // Per unit of per-endpoint injection rate r = 1:
    // minimal load on one directed pipe: each of the `epg` endpoints of the
    // source group sends epg/(n-1) of its traffic to the destination group.
    let minimal_per_pipe = epg * epg / (n - 1.0) * (1.0 - nonminimal_fraction);
    // Valiant traffic: every inter-group unit crosses two of the g*(g-1)
    // directed pipes chosen uniformly.
    let valiant_per_pipe = n * inter_frac * nonminimal_fraction * 2.0 / (g * (g - 1.0));
    let pipe_load = minimal_per_pipe + valiant_per_pipe;

    let pipe_cap = p.pipe_capacity().as_bytes_per_sec();
    let ep_cap = p.endpoint_rate().as_bytes_per_sec();

    let r_pipe = pipe_cap / pipe_load;
    let r = r_pipe.min(ep_cap);
    AllToAllThroughput {
        per_endpoint: Bandwidth::bytes_per_sec(r),
        per_node: Bandwidth::bytes_per_sec(r * p.nics_per_node as f64),
        pipe_bound: r_pipe < ep_cap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dragonfly::DragonflyParams;

    #[test]
    fn mpigraph_pairs_cover_all_endpoints() {
        let mut rng = StreamRng::from_seed(1);
        let pairs = mpigraph_pairs(64, &mut rng);
        assert_eq!(pairs.len(), 64);
        let mut recv = [false; 64];
        for (s, d) in &pairs {
            assert_ne!(s, d);
            assert!(!recv[d.0 as usize]);
            recv[d.0 as usize] = true;
        }
    }

    #[test]
    fn incast_targets_one_destination() {
        let mut rng = StreamRng::from_seed(2);
        let pool: Vec<EndpointId> = (0..20).map(EndpointId).collect();
        let pairs = incast_pairs(&pool, EndpointId(5), 8, &mut rng);
        assert_eq!(pairs.len(), 8);
        for (s, d) in pairs {
            assert_eq!(d, EndpointId(5));
            assert_ne!(s, d);
        }
    }

    #[test]
    fn broadcast_sources_one_root() {
        let mut rng = StreamRng::from_seed(3);
        let pool: Vec<EndpointId> = (0..20).map(EndpointId).collect();
        let pairs = broadcast_pairs(&pool, EndpointId(0), 10, &mut rng);
        assert_eq!(pairs.len(), 10);
        for (s, d) in pairs {
            assert_eq!(s, EndpointId(0));
            assert_ne!(s, d);
        }
    }

    #[test]
    fn ring_is_a_cycle() {
        let pool: Vec<EndpointId> = (0..5).map(EndpointId).collect();
        let pairs = ring_pairs(&pool);
        assert_eq!(pairs.len(), 5);
        assert_eq!(pairs[4], (EndpointId(4), EndpointId(0)));
    }

    #[test]
    fn frontier_all_to_all_matches_paper() {
        // §4.2.2: "~30-32 GB/s/node (~7.5-8.0 GB/s/NIC)" for all-to-all at
        // 8 PPN with heavy non-minimal routing.
        let df = Dragonfly::build(DragonflyParams::frontier());
        let t = all_to_all_throughput(&df, 1.0);
        let nic = t.per_endpoint.as_gb_s();
        let node = t.per_node.as_gb_s();
        assert!((6.8..8.5).contains(&nic), "per-NIC {nic}");
        assert!((27.0..34.0).contains(&node), "per-node {node}");
        assert!(t.pipe_bound);
    }

    #[test]
    fn minimal_only_all_to_all_is_faster() {
        let df = Dragonfly::build(DragonflyParams::frontier());
        let nm = all_to_all_throughput(&df, 1.0);
        let min = all_to_all_throughput(&df, 0.0);
        assert!(min.per_endpoint > nm.per_endpoint);
        // Non-minimal halves effective global bandwidth (paper's claim):
        let ratio = min.per_endpoint.as_gb_s() / nm.per_endpoint.as_gb_s();
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn small_machines_are_injection_bound() {
        // A 2-group toy dragonfly has plenty of pipe per endpoint.
        let df = Dragonfly::build(DragonflyParams::scaled(2, 2, 1));
        let t = all_to_all_throughput(&df, 0.0);
        assert!(!t.pipe_bound);
        assert!((t.per_endpoint.as_gb_s() - 17.5).abs() < 1e-6);
    }
}
