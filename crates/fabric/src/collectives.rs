//! MPI collective algorithms executed on the message-level DES.
//!
//! The paper's workloads lean on three collectives: GESTS' all-to-all
//! transposes, GPCNeT's multiple-allreduce, and the broadcast congestors.
//! This module implements the classic algorithms — recursive-doubling and
//! ring allreduce, pairwise-exchange all-to-all, binomial broadcast — as
//! synchronized rounds of [`crate::des`] messages over routed dragonfly
//! paths, so algorithm choice, message size, and placement all interact
//! with the topology the way they do on the real machine.

use crate::des::{makespan, DesConfig, MessageBatch, PathSpan};
use crate::dragonfly::Dragonfly;
use crate::routing::{RoutePolicy, Router};
use crate::topology::EndpointId;
use frontier_sim_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;

/// Interned routed paths, keyed by (src, dst) endpoint pair. The value is
/// a span into the shared [`MessageBatch`] path pool, which outlives
/// `clear()` — so each pair is routed and copied into the pool exactly
/// once across all rounds of a collective.
type PathCache = HashMap<(EndpointId, EndpointId), PathSpan>;

/// Allreduce algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllreduceAlgo {
    /// log2(p) rounds of pairwise exchange of the full buffer:
    /// latency-optimal, bandwidth cost `log2(p) * size`.
    RecursiveDoubling,
    /// reduce-scatter + allgather over a ring: 2(p-1) rounds of `size/p`:
    /// bandwidth-optimal, latency cost `2(p-1) * alpha`.
    Ring,
}

/// A collective execution context: a set of ranks (endpoints) on a
/// dragonfly with a routing policy.
pub struct Collectives<'a> {
    df: &'a Dragonfly,
    router: Router<'a>,
    cfg: DesConfig,
    ranks: Vec<EndpointId>,
    seed: u64,
    /// Routed-path cache: collectives re-send over the same (src, dst)
    /// pairs round after round (a ring allreduce revisits each neighbor
    /// pair 2(p-1) times), so each pair routes once and every message
    /// over it reuses the interned [`PathSpan`] instead of cloning the
    /// path per injected message.
    paths: RefCell<PathCache>,
    /// Reusable SoA message arena: cleared (messages only — the interned
    /// path pool survives) and refilled each round, so steady-state rounds
    /// allocate nothing.
    batch: RefCell<MessageBatch>,
    /// Run each round on the domain-parallel DES engine
    /// ([`crate::pdes::simulate_parallel`]) instead of the serial core.
    /// Results are byte-identical either way; only wall-clock changes.
    parallel: bool,
}

impl<'a> Collectives<'a> {
    pub fn new(df: &'a Dragonfly, ranks: Vec<EndpointId>, policy: RoutePolicy, seed: u64) -> Self {
        assert!(ranks.len() >= 2, "collective needs at least two ranks");
        Collectives {
            df,
            router: Router::new(df, policy),
            cfg: DesConfig::default(),
            ranks,
            seed,
            paths: RefCell::new(PathCache::new()),
            batch: RefCell::new(MessageBatch::new()),
            parallel: false,
        }
    }

    /// Switch round simulation to the domain-parallel engine. The
    /// parallel engine also returns the round makespan directly (max over
    /// per-domain makespans), skipping the per-delivery re-scan.
    pub fn with_parallel_des(mut self) -> Self {
        self.parallel = true;
        self
    }

    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Run one synchronized round of (src_rank, dst_rank, size) exchanges
    /// and return the round's completion time.
    fn round(&self, pairs: &[(usize, usize, Bytes)], rng: &mut StreamRng) -> SimTime {
        let mut paths = self.paths.borrow_mut();
        let mut batch = self.batch.borrow_mut();
        batch.clear();
        for &(s, d, size) in pairs {
            if self.ranks[s] == self.ranks[d] {
                continue;
            }
            let (src, dst) = (self.ranks[s], self.ranks[d]);
            let span = *paths
                .entry((src, dst))
                .or_insert_with(|| batch.intern(&self.router.route(src, dst, rng)));
            batch.push(span, size, SimTime::ZERO, s as u64);
        }
        if batch.is_empty() {
            return SimTime::ZERO;
        }
        if self.parallel {
            crate::pdes::simulate_parallel(self.df.topology(), &self.cfg, &batch).makespan
        } else {
            makespan(self.df.topology(), &self.cfg, &batch)
        }
    }

    /// Allreduce of `size` bytes across all ranks.
    pub fn allreduce(&self, size: Bytes, algo: AllreduceAlgo) -> SimTime {
        let p = self.ranks.len();
        let mut rng = StreamRng::for_component(self.seed, "allreduce", 0);
        let mut total = SimTime::ZERO;
        match algo {
            AllreduceAlgo::RecursiveDoubling => {
                // For non-power-of-two p, the standard trick folds the
                // excess ranks in one extra pre/post round each.
                let p2 = p.next_power_of_two() >> usize::from(!p.is_power_of_two());
                let excess = p - p2;
                if excess > 0 {
                    let pre: Vec<(usize, usize, Bytes)> =
                        (0..excess).map(|i| (p2 + i, i, size)).collect();
                    total += self.round(&pre, &mut rng);
                }
                let mut dist = 1usize;
                while dist < p2 {
                    let pairs: Vec<(usize, usize, Bytes)> =
                        (0..p2).map(|r| (r, r ^ dist, size)).collect();
                    total += self.round(&pairs, &mut rng);
                    dist <<= 1;
                }
                if excess > 0 {
                    let post: Vec<(usize, usize, Bytes)> =
                        (0..excess).map(|i| (i, p2 + i, size)).collect();
                    total += self.round(&post, &mut rng);
                }
            }
            AllreduceAlgo::Ring => {
                // 2(p-1) neighbor rounds of size/p chunks.
                let chunk = Bytes::new((size.as_u64() / p as u64).max(1));
                for _ in 0..(2 * (p - 1)) {
                    let pairs: Vec<(usize, usize, Bytes)> =
                        (0..p).map(|r| (r, (r + 1) % p, chunk)).collect();
                    total += self.round(&pairs, &mut rng);
                }
            }
        }
        total
    }

    /// Pairwise-exchange all-to-all: p-1 rounds, round k sends `size` from
    /// rank r to rank r XOR k (power-of-two) or (r+k) mod p.
    pub fn all_to_all(&self, size_per_peer: Bytes) -> SimTime {
        let p = self.ranks.len();
        let mut rng = StreamRng::for_component(self.seed, "alltoall", 0);
        let mut total = SimTime::ZERO;
        for k in 1..p {
            let pairs: Vec<(usize, usize, Bytes)> =
                (0..p).map(|r| (r, (r + k) % p, size_per_peer)).collect();
            total += self.round(&pairs, &mut rng);
        }
        total
    }

    /// Binomial-tree broadcast from rank 0.
    pub fn broadcast(&self, size: Bytes) -> SimTime {
        let p = self.ranks.len();
        let mut rng = StreamRng::for_component(self.seed, "bcast", 0);
        let mut total = SimTime::ZERO;
        let mut have = 1usize; // ranks 0..have hold the data
        while have < p {
            let senders = have.min(p - have);
            let pairs: Vec<(usize, usize, Bytes)> =
                (0..senders).map(|s| (s, have + s, size)).collect();
            total += self.round(&pairs, &mut rng);
            have += senders;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dragonfly::DragonflyParams;

    fn df() -> Dragonfly {
        Dragonfly::build(DragonflyParams::scaled(4, 4, 4))
    }

    fn ranks(_df: &Dragonfly, n: usize) -> Vec<EndpointId> {
        // Spread over nodes: one rank per NIC.
        (0..n).map(|i| EndpointId(i as u32)).collect()
    }

    #[test]
    fn allreduce_crossover() {
        // Small messages: recursive doubling (fewer rounds) wins.
        // Large messages: ring (bandwidth-optimal) wins.
        let df = df();
        let c = Collectives::new(&df, ranks(&df, 16), RoutePolicy::Minimal, 1);
        let small_rd = c.allreduce(Bytes::new(8), AllreduceAlgo::RecursiveDoubling);
        let small_ring = c.allreduce(Bytes::new(8), AllreduceAlgo::Ring);
        assert!(small_rd < small_ring, "{small_rd} vs {small_ring}");
        let big_rd = c.allreduce(Bytes::mib(64), AllreduceAlgo::RecursiveDoubling);
        let big_ring = c.allreduce(Bytes::mib(64), AllreduceAlgo::Ring);
        assert!(big_ring < big_rd, "{big_ring} vs {big_rd}");
    }

    #[test]
    fn allreduce_scales_logarithmically_for_small_messages() {
        let df = df();
        let t8 = Collectives::new(&df, ranks(&df, 8), RoutePolicy::Minimal, 1)
            .allreduce(Bytes::new(8), AllreduceAlgo::RecursiveDoubling);
        let t16 = Collectives::new(&df, ranks(&df, 16), RoutePolicy::Minimal, 1)
            .allreduce(Bytes::new(8), AllreduceAlgo::RecursiveDoubling);
        let t32 = Collectives::new(&df, ranks(&df, 32), RoutePolicy::Minimal, 1)
            .allreduce(Bytes::new(8), AllreduceAlgo::RecursiveDoubling);
        // One extra round per doubling, roughly constant increments.
        let d1 = t16.as_micros_f64() - t8.as_micros_f64();
        let d2 = t32.as_micros_f64() - t16.as_micros_f64();
        assert!(d1 > 0.0 && d2 > 0.0);
        assert!((d1 - d2).abs() < 0.8 * d1.max(d2), "{d1} vs {d2}");
    }

    #[test]
    fn non_power_of_two_allreduce_works() {
        let df = df();
        let c = Collectives::new(&df, ranks(&df, 13), RoutePolicy::Minimal, 1);
        let t = c.allreduce(Bytes::kib(1), AllreduceAlgo::RecursiveDoubling);
        assert!(t > SimTime::ZERO);
        // Costs more than the 8-rank case (extra fold rounds).
        let t8 = Collectives::new(&df, ranks(&df, 8), RoutePolicy::Minimal, 1)
            .allreduce(Bytes::kib(1), AllreduceAlgo::RecursiveDoubling);
        assert!(t > t8);
    }

    #[test]
    fn all_to_all_grows_quadratically_in_total_bytes() {
        let df = df();
        let c8 = Collectives::new(&df, ranks(&df, 8), RoutePolicy::Minimal, 1);
        let c16 = Collectives::new(&df, ranks(&df, 16), RoutePolicy::Minimal, 1);
        let t8 = c8.all_to_all(Bytes::mib(1));
        let t16 = c16.all_to_all(Bytes::mib(1));
        // Twice the ranks -> ~2x the rounds and >= the per-round time.
        assert!(t16.as_secs_f64() > 1.8 * t8.as_secs_f64());
    }

    #[test]
    fn broadcast_is_logarithmic() {
        let df = df();
        let t4 =
            Collectives::new(&df, ranks(&df, 4), RoutePolicy::Minimal, 1).broadcast(Bytes::kib(64));
        let t16 = Collectives::new(&df, ranks(&df, 16), RoutePolicy::Minimal, 1)
            .broadcast(Bytes::kib(64));
        // 16 ranks needs only 2 more rounds than 4 ranks (log growth, far
        // from the 4x of a linear broadcast).
        assert!(t16 > t4);
        assert!(t16.as_secs_f64() < 3.5 * t4.as_secs_f64());
    }

    #[test]
    fn deterministic() {
        let df = df();
        let c = Collectives::new(&df, ranks(&df, 16), RoutePolicy::adaptive_default(), 9);
        let a = c.allreduce(Bytes::kib(8), AllreduceAlgo::Ring);
        let c2 = Collectives::new(&df, ranks(&df, 16), RoutePolicy::adaptive_default(), 9);
        let b = c2.allreduce(Bytes::kib(8), AllreduceAlgo::Ring);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn single_rank_rejected() {
        let df = df();
        Collectives::new(&df, vec![EndpointId(0)], RoutePolicy::Minimal, 1);
    }
}
