//! # frontier-miniapps
//!
//! Small, *actually computing* kernels from the application domains of
//! §4.4 — finite-volume hydrodynamics (Cholla), complex FFT (GESTS), LU
//! factorization (HPL), and a 7-point stencil — each with correctness
//! tests against analytic results and an instrumented operation/byte
//! counter.
//!
//! Their purpose in this workspace is *validation*: the proxy models in
//! `frontier-apps` assume specific work densities (flops per cell, bytes
//! per point, `2/3·N³` for LU, `5·N·log₂N` per FFT); these kernels
//! measure the real counts of faithful implementations and the test
//! suites pin the assumptions down. They also serve as runnable,
//! self-checking examples of the algorithms the paper's applications are
//! built on.

pub mod counter;
pub mod fft;
pub mod hydro;
pub mod lu;
pub mod stencil;

pub mod prelude {
    pub use crate::counter::OpCounter;
    pub use crate::fft::{fft_forward, fft_inverse};
    pub use crate::hydro::{Hydro1d, SodResult};
    pub use crate::lu::{lu_factor, lu_solve};
    pub use crate::stencil::Stencil3d;
}

pub use prelude::*;
