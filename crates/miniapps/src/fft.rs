//! Radix-2 complex FFT — the building block of GESTS' pseudo-spectral
//! solver.
//!
//! Iterative Cooley–Tukey with explicit bit-reversal. The classic
//! operation count for a radix-2 complex transform is `5·N·log₂N` real
//! flops (per butterfly: one complex multiply = 6, one add + one subtract
//! = 4, amortized to 10 per two points); the instrumented kernel verifies
//! the constant the GESTS proxy model assumes.

use crate::counter::OpCounter;

/// A complex number as (re, im). A minimal local type keeps the kernel
/// dependency-free.
pub type C64 = (f64, f64);

#[inline]
fn c_add(a: C64, b: C64) -> C64 {
    (a.0 + b.0, a.1 + b.1)
}

#[inline]
fn c_sub(a: C64, b: C64) -> C64 {
    (a.0 - b.0, a.1 - b.1)
}

#[inline]
fn c_mul(a: C64, b: C64) -> C64 {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

fn bit_reverse_permute(data: &mut [C64]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            data.swap(i, j);
        }
        let mut mask = n >> 1;
        while mask > 0 && j & mask != 0 {
            j &= !mask;
            mask >>= 1;
        }
        j |= mask;
    }
}

fn fft_in_place(data: &mut [C64], inverse: bool, ops: &mut OpCounter) {
    let n = data.len();
    assert!(n.is_power_of_two(), "radix-2 FFT needs a power-of-two size");
    bit_reverse_permute(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = (ang.cos(), ang.sin());
        let mut i = 0usize;
        while i < n {
            let mut w: C64 = (1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = c_mul(data[i + k + len / 2], w);
                data[i + k] = c_add(u, v);
                data[i + k + len / 2] = c_sub(u, v);
                w = c_mul(w, wlen);
                // One butterfly: complex mul (6 flops) + 2 complex
                // adds (4 flops).
                ops.add_flops(10);
                ops.add_bytes(2 * 16 * 2); // read + write two C64s
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for d in data.iter_mut() {
            d.0 *= inv_n;
            d.1 *= inv_n;
            ops.add_flops(2);
        }
    }
}

/// Forward FFT (in place); returns the op counter.
pub fn fft_forward(data: &mut [C64]) -> OpCounter {
    let mut ops = OpCounter::new();
    fft_in_place(data, false, &mut ops);
    ops
}

/// Inverse FFT (in place, normalized); returns the op counter.
pub fn fft_inverse(data: &mut [C64]) -> OpCounter {
    let mut ops = OpCounter::new();
    fft_in_place(data, true, &mut ops);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64) -> bool {
        (a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9
    }

    #[test]
    fn transforms_a_known_signal() {
        // FFT of a constant is an impulse at bin 0.
        let n = 64;
        let mut data: Vec<C64> = vec![(1.0, 0.0); n];
        fft_forward(&mut data);
        assert!(close(data[0], (n as f64, 0.0)));
        for &d in &data[1..] {
            assert!(close(d, (0.0, 0.0)), "{d:?}");
        }
    }

    #[test]
    fn single_tone_lands_in_its_bin() {
        let n = 128usize;
        let k = 5usize;
        let mut data: Vec<C64> = (0..n)
            .map(|i| {
                let ph = std::f64::consts::TAU * k as f64 * i as f64 / n as f64;
                (ph.cos(), ph.sin())
            })
            .collect();
        fft_forward(&mut data);
        for (i, &d) in data.iter().enumerate() {
            let mag = (d.0 * d.0 + d.1 * d.1).sqrt();
            if i == k {
                assert!((mag - n as f64).abs() < 1e-6);
            } else {
                assert!(mag < 1e-6, "leak at bin {i}: {mag}");
            }
        }
    }

    #[test]
    fn round_trip_recovers_input() {
        let n = 256usize;
        let orig: Vec<C64> = (0..n)
            .map(|i| ((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut data = orig.clone();
        fft_forward(&mut data);
        fft_inverse(&mut data);
        for (a, b) in data.iter().zip(&orig) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 128usize;
        let orig: Vec<C64> = (0..n).map(|i| ((i as f64 * 0.3).sin(), 0.0)).collect();
        let time_energy: f64 = orig.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum();
        let mut data = orig;
        fft_forward(&mut data);
        let freq_energy: f64 = data.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn op_count_is_5n_log2n() {
        // The constant the GESTS proxy model assumes.
        for n in [64usize, 256, 1024] {
            let mut data: Vec<C64> = vec![(1.0, 0.5); n];
            let ops = fft_forward(&mut data);
            let expect = 5.0 * n as f64 * (n as f64).log2();
            assert!(
                (ops.flops as f64 - expect).abs() / expect < 1e-12,
                "n={n}: {} vs {expect}",
                ops.flops
            );
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let mut data: Vec<C64> = vec![(0.0, 0.0); 48];
        fft_forward(&mut data);
    }
}
