//! Operation/byte accounting for the mini-app kernels.

use serde::{Deserialize, Serialize};

/// A simple flop/byte counter threaded through the kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounter {
    /// Floating-point operations (adds, muls, divs, sqrts each count 1).
    pub flops: u64,
    /// Bytes read from or written to the working arrays.
    pub bytes: u64,
}

impl OpCounter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add_flops(&mut self, n: u64) {
        self.flops += n;
    }

    #[inline]
    pub fn add_bytes(&mut self, n: u64) {
        self.bytes += n;
    }

    /// Arithmetic intensity, flops per byte.
    pub fn intensity(&self) -> f64 {
        self.flops as f64 / self.bytes.max(1) as f64
    }

    pub fn merge(&mut self, other: &OpCounter) {
        self.flops += other.flops;
        self.bytes += other.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_merges() {
        let mut a = OpCounter::new();
        a.add_flops(10);
        a.add_bytes(40);
        let mut b = OpCounter::new();
        b.add_flops(5);
        b.add_bytes(10);
        a.merge(&b);
        assert_eq!(a.flops, 15);
        assert_eq!(a.bytes, 50);
        assert!((a.intensity() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_counter_intensity_is_finite() {
        assert_eq!(OpCounter::new().intensity(), 0.0);
    }
}
