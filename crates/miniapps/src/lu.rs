//! Dense LU factorization with partial pivoting — HPL's kernel in
//! miniature.
//!
//! Right-looking LU, the same loop structure the HPL panel model in
//! `frontier-apps::hpl` walks: at step `k`, scale the pivot column and
//! apply a rank-1 update to the trailing `(n-k-1)²` block. The tests
//! verify `P·A = L·U`, solve accuracy, and the `2/3·n³` flop count the
//! HPL model assumes.

use crate::counter::OpCounter;

/// Column-major dense matrix, minimal on purpose.
#[derive(Debug, Clone)]
pub struct Matrix {
    pub n: usize,
    /// Column-major storage: `a[i + j*n]`.
    pub a: Vec<f64>,
}

impl Matrix {
    pub fn new(n: usize) -> Self {
        Matrix {
            n,
            a: vec![0.0; n * n],
        }
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.a[i + j * self.n]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.a[i + j * self.n] = v;
    }

    /// A well-conditioned deterministic test matrix.
    pub fn test_matrix(n: usize, seed: u64) -> Self {
        let mut m = Matrix::new(n);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for j in 0..n {
            for i in 0..n {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let r = (state >> 11) as f64 / (1u64 << 53) as f64;
                m.set(i, j, r - 0.5 + if i == j { n as f64 } else { 0.0 });
            }
        }
        m
    }

    /// y = A·x.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (j, &xj) in x.iter().enumerate() {
            for (i, yi) in y.iter_mut().enumerate() {
                *yi += self.at(i, j) * xj;
            }
        }
        y
    }
}

/// LU factorization in place with partial pivoting. Returns the pivot
/// vector and the op counter. After return, `m` holds L (unit diagonal,
/// below) and U (on and above).
pub fn lu_factor(m: &mut Matrix) -> (Vec<usize>, OpCounter) {
    let n = m.n;
    let mut piv: Vec<usize> = (0..n).collect();
    let mut ops = OpCounter::new();
    for k in 0..n {
        // Partial pivot: largest magnitude in column k at or below row k.
        let (mut pi, mut pv) = (k, m.at(k, k).abs());
        for i in (k + 1)..n {
            let v = m.at(i, k).abs();
            if v > pv {
                pi = i;
                pv = v;
            }
        }
        assert!(pv > 0.0, "singular matrix at step {k}");
        if pi != k {
            for j in 0..n {
                let t = m.at(k, j);
                m.set(k, j, m.at(pi, j));
                m.set(pi, j, t);
            }
            piv.swap(k, pi);
        }
        // Scale the pivot column.
        let inv = 1.0 / m.at(k, k);
        for i in (k + 1)..n {
            let v = m.at(i, k) * inv;
            m.set(i, k, v);
            ops.add_flops(1);
        }
        // Rank-1 trailing update: the 2·(n-k-1)² term that integrates to
        // 2/3·n³.
        for j in (k + 1)..n {
            let ukj = m.at(k, j);
            for i in (k + 1)..n {
                let v = m.at(i, j) - m.at(i, k) * ukj;
                m.set(i, j, v);
                ops.add_flops(2);
                ops.add_bytes(24);
            }
        }
    }
    (piv, ops)
}

/// Solve A·x = b given the factored matrix and pivots.
pub fn lu_solve(m: &Matrix, piv: &[usize], b: &[f64]) -> Vec<f64> {
    let n = m.n;
    assert_eq!(b.len(), n);
    // Apply the permutation, then forward/back substitution.
    let mut x: Vec<f64> = piv.iter().map(|&p| b[p]).collect();
    for j in 0..n {
        for i in (j + 1)..n {
            x[i] -= m.at(i, j) * x[j];
        }
    }
    for j in (0..n).rev() {
        x[j] /= m.at(j, j);
        for i in 0..j {
            x[i] -= m.at(i, j) * x[j];
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorization_solves_systems() {
        let n = 64;
        let a = Matrix::test_matrix(n, 7);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.matvec(&x_true);
        let mut f = a.clone();
        let (piv, _) = lu_factor(&mut f);
        let x = lu_solve(&f, &piv, &b);
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-9, "{xs} vs {xt}");
        }
    }

    #[test]
    fn residual_is_small() {
        let n = 96;
        let a = Matrix::test_matrix(n, 11);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.01).collect();
        let mut f = a.clone();
        let (piv, _) = lu_factor(&mut f);
        let x = lu_solve(&f, &piv, &b);
        let r = a.matvec(&x);
        // HPL-style scaled residual.
        let err: f64 = r
            .iter()
            .zip(&b)
            .map(|(ri, bi)| (ri - bi).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-8, "residual {err}");
    }

    #[test]
    fn flop_count_is_two_thirds_n_cubed() {
        // The constant the HPL panel model assumes.
        for n in [48usize, 96, 192] {
            let mut m = Matrix::test_matrix(n, 3);
            let (_, ops) = lu_factor(&mut m);
            let expect = 2.0 / 3.0 * (n as f64).powi(3);
            let err = (ops.flops as f64 - expect).abs() / expect;
            // The update term dominates; lower-order terms fade as n grows.
            assert!(
                err < 3.5 / n as f64 + 0.02,
                "n={n}: {} vs {expect}",
                ops.flops
            );
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut m = Matrix::new(3);
        // Leading zero forces a row swap.
        let rows = [[0.0, 2.0, 1.0], [1.0, 0.0, 0.0], [4.0, 1.0, 3.0]];
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        let a = m.clone();
        let (piv, _) = lu_factor(&mut m);
        let b = vec![3.0, 1.0, 8.0];
        let x = lu_solve(&m, &piv, &b);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_matrix_detected() {
        let mut m = Matrix::new(2); // all zeros
        lu_factor(&mut m);
    }
}
