//! 1D finite-volume Euler solver — the algorithmic core of Cholla
//! (§4.4.1) in miniature.
//!
//! Godunov-type update with an HLL approximate Riemann solver on an ideal
//! gas, first-order in space, forward-Euler in time with a CFL-limited
//! step. The test suite runs the Sod shock tube and checks the exact
//! contact/shock structure, conservation, and positivity — and the
//! instrumented kernel pins down the flops-per-cell-update density the
//! Cholla proxy model assumes.

use crate::counter::OpCounter;
use serde::{Deserialize, Serialize};

const GAMMA: f64 = 1.4;

/// Conserved state per cell: density, momentum, total energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Conserved {
    pub rho: f64,
    pub mom: f64,
    pub ene: f64,
}

impl Conserved {
    /// From primitive (density, velocity, pressure).
    pub fn from_primitive(rho: f64, v: f64, p: f64) -> Self {
        assert!(rho > 0.0 && p > 0.0, "unphysical primitive state");
        Conserved {
            rho,
            mom: rho * v,
            ene: p / (GAMMA - 1.0) + 0.5 * rho * v * v,
        }
    }

    pub fn velocity(&self) -> f64 {
        self.mom / self.rho
    }

    pub fn pressure(&self) -> f64 {
        let v = self.velocity();
        (GAMMA - 1.0) * (self.ene - 0.5 * self.rho * v * v)
    }

    pub fn sound_speed(&self) -> f64 {
        (GAMMA * self.pressure() / self.rho).sqrt()
    }

    fn flux(&self) -> (f64, f64, f64) {
        let v = self.velocity();
        let p = self.pressure();
        (self.mom, self.mom * v + p, (self.ene + p) * v)
    }
}

/// HLL flux between a left and right state. ~60 flops per interface.
fn hll_flux(l: &Conserved, r: &Conserved, ops: &mut OpCounter) -> (f64, f64, f64) {
    let (vl, vr) = (l.velocity(), r.velocity());
    let (cl, cr) = (l.sound_speed(), r.sound_speed());
    let sl = (vl - cl).min(vr - cr);
    let sr = (vl + cl).max(vr + cr);
    let fl = l.flux();
    let fr = r.flux();
    ops.add_flops(60);
    ops.add_bytes(2 * 24 + 24); // read two states, write one flux
    if sl >= 0.0 {
        fl
    } else if sr <= 0.0 {
        fr
    } else {
        let inv = 1.0 / (sr - sl);
        (
            (sr * fl.0 - sl * fr.0 + sl * sr * (r.rho - l.rho)) * inv,
            (sr * fl.1 - sl * fr.1 + sl * sr * (r.mom - l.mom)) * inv,
            (sr * fl.2 - sl * fr.2 + sl * sr * (r.ene - l.ene)) * inv,
        )
    }
}

/// The 1D hydro mesh with transmissive boundaries.
#[derive(Debug, Clone)]
pub struct Hydro1d {
    pub cells: Vec<Conserved>,
    pub dx: f64,
    pub cfl: f64,
    pub time: f64,
    pub ops: OpCounter,
    pub steps: u64,
}

impl Hydro1d {
    /// The Sod shock tube on `n` cells over [0, 1]: (1, 0, 1) on the left
    /// of x = 0.5, (0.125, 0, 0.1) on the right.
    pub fn sod(n: usize) -> Self {
        assert!(n >= 16);
        let dx = 1.0 / n as f64;
        let cells = (0..n)
            .map(|i| {
                let x = (i as f64 + 0.5) * dx;
                if x < 0.5 {
                    Conserved::from_primitive(1.0, 0.0, 1.0)
                } else {
                    Conserved::from_primitive(0.125, 0.0, 0.1)
                }
            })
            .collect();
        Hydro1d {
            cells,
            dx,
            cfl: 0.5,
            time: 0.0,
            ops: OpCounter::new(),
            steps: 0,
        }
    }

    /// CFL-limited time step.
    pub fn max_dt(&self) -> f64 {
        let max_speed = self
            .cells
            .iter()
            .map(|c| c.velocity().abs() + c.sound_speed())
            .fold(0.0f64, f64::max);
        self.cfl * self.dx / max_speed
    }

    /// Advance one step; returns dt.
    pub fn step(&mut self) -> f64 {
        let n = self.cells.len();
        let dt = self.max_dt();
        let lam = dt / self.dx;
        // Interface fluxes (transmissive ghost cells at the ends).
        let mut fluxes = Vec::with_capacity(n + 1);
        fluxes.push(hll_flux(&self.cells[0], &self.cells[0], &mut self.ops));
        for i in 0..n - 1 {
            fluxes.push(hll_flux(&self.cells[i], &self.cells[i + 1], &mut self.ops));
        }
        fluxes.push(hll_flux(
            &self.cells[n - 1],
            &self.cells[n - 1],
            &mut self.ops,
        ));
        for (i, c) in self.cells.iter_mut().enumerate() {
            let (f0, f1) = (fluxes[i], fluxes[i + 1]);
            c.rho -= lam * (f1.0 - f0.0);
            c.mom -= lam * (f1.1 - f0.1);
            c.ene -= lam * (f1.2 - f0.2);
            self.ops.add_flops(9);
            self.ops.add_bytes(24 * 2);
        }
        self.time += dt;
        self.steps += 1;
        dt
    }

    /// Run until `t_end`.
    pub fn run_until(&mut self, t_end: f64) {
        while self.time < t_end {
            let remaining = t_end - self.time;
            let dt = self.max_dt();
            if dt >= remaining {
                // Final partial step.
                let saved_cfl = self.cfl;
                self.cfl *= remaining / dt;
                self.step();
                self.cfl = saved_cfl;
                break;
            }
            self.step();
        }
    }

    /// Total mass and energy on the mesh (× dx).
    pub fn totals(&self) -> (f64, f64) {
        let m: f64 = self.cells.iter().map(|c| c.rho).sum();
        let e: f64 = self.cells.iter().map(|c| c.ene).sum();
        (m * self.dx, e * self.dx)
    }

    /// Flops per cell-update (the Cholla proxy-model density).
    pub fn flops_per_cell_update(&self) -> f64 {
        self.ops.flops as f64 / (self.steps as f64 * self.cells.len() as f64)
    }
}

/// Extracted wave positions of the Sod solution at t = 0.2.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SodResult {
    pub shock_x: f64,
    pub contact_x: f64,
}

/// Locate the shock and contact in a solved Sod state by scanning for the
/// density jumps from the right.
pub fn locate_waves(h: &Hydro1d) -> SodResult {
    let n = h.cells.len();
    let dx = h.dx;
    // Shock: first cell from the right where density exceeds the ambient
    // 0.125 by 10 %.
    let shock_i = (0..n)
        .rev()
        .find(|&i| h.cells[i].rho > 0.125 * 1.1)
        .expect("shock exists");
    // Contact: first cell left of the shock where density jumps above the
    // post-shock plateau (~0.266) toward the rarefied left value (~0.426).
    let contact_i = (0..shock_i)
        .rev()
        .find(|&i| h.cells[i].rho > 0.34)
        .expect("contact exists");
    SodResult {
        shock_x: (shock_i as f64 + 0.5) * dx,
        contact_x: (contact_i as f64 + 0.5) * dx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sod_waves_land_at_the_analytic_positions() {
        // Exact solution at t = 0.2 (gamma = 1.4): shock at x ≈ 0.850,
        // contact at x ≈ 0.685.
        let mut h = Hydro1d::sod(800);
        h.run_until(0.2);
        let waves = locate_waves(&h);
        assert!(
            (waves.shock_x - 0.850).abs() < 0.02,
            "shock {}",
            waves.shock_x
        );
        assert!(
            (waves.contact_x - 0.685).abs() < 0.03,
            "contact {}",
            waves.contact_x
        );
    }

    #[test]
    fn mass_and_energy_conserved() {
        let mut h = Hydro1d::sod(400);
        let (m0, e0) = h.totals();
        h.run_until(0.15);
        let (m1, e1) = h.totals();
        // Transmissive boundaries: nothing leaves before waves reach the
        // edges at t = 0.2.
        assert!((m1 - m0).abs() / m0 < 1e-12, "mass drift");
        assert!((e1 - e0).abs() / e0 < 1e-12, "energy drift");
    }

    #[test]
    fn solution_stays_physical() {
        let mut h = Hydro1d::sod(256);
        h.run_until(0.2);
        for c in &h.cells {
            assert!(c.rho > 0.0, "negative density");
            assert!(c.pressure() > 0.0, "negative pressure");
        }
    }

    #[test]
    fn post_shock_plateau_density() {
        // The exact Sod solution's post-shock density is ~0.2656.
        let mut h = Hydro1d::sod(1600);
        h.run_until(0.2);
        // Sample between contact (~0.685) and shock (~0.850).
        let i = (0.77 / h.dx) as usize;
        assert!((h.cells[i].rho - 0.2656).abs() < 0.01, "{}", h.cells[i].rho);
    }

    #[test]
    fn flops_per_cell_update_density() {
        // The Cholla proxy assumes O(100) flops per cell update for the
        // first-order method; measure the real kernel.
        let mut h = Hydro1d::sod(512);
        h.run_until(0.1);
        let f = h.flops_per_cell_update();
        assert!((60.0..90.0).contains(&f), "{f} flops/cell-update");
    }

    #[test]
    fn resolution_refines_the_shock() {
        let pos = |n: usize| {
            let mut h = Hydro1d::sod(n);
            h.run_until(0.2);
            locate_waves(&h).shock_x
        };
        let coarse = (pos(100) - 0.850).abs();
        let fine = (pos(1600) - 0.850).abs();
        assert!(
            fine <= coarse + 1e-9,
            "refinement should not worsen: {coarse} -> {fine}"
        );
    }

    #[test]
    fn cfl_step_is_stable() {
        let mut h = Hydro1d::sod(128);
        for _ in 0..200 {
            let dt = h.step();
            assert!(dt.is_finite() && dt > 0.0);
        }
    }
}
