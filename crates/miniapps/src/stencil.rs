//! 7-point 3D stencil (Jacobi relaxation) — the halo-exchange workload
//! shape of AthenaPK/PIConGPU-class codes, and the validation anchor for
//! the roofline arithmetic-intensity assumption in `frontier-node`.

use crate::counter::OpCounter;

/// A 3D scalar field with one ghost layer, flattened.
#[derive(Debug, Clone)]
pub struct Stencil3d {
    pub n: usize,
    data: Vec<f64>,
    scratch: Vec<f64>,
    pub ops: OpCounter,
    pub sweeps: u64,
}

impl Stencil3d {
    /// Interior of n³ with a ghost shell, initialized to `f(x,y,z)`.
    pub fn new<F: Fn(usize, usize, usize) -> f64>(n: usize, f: F) -> Self {
        assert!(n >= 2);
        let m = n + 2;
        let mut data = vec![0.0; m * m * m];
        for z in 0..m {
            for y in 0..m {
                for x in 0..m {
                    data[x + m * (y + m * z)] = f(x, y, z);
                }
            }
        }
        Stencil3d {
            n,
            scratch: data.clone(),
            data,
            ops: OpCounter::new(),
            sweeps: 0,
        }
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        let m = self.n + 2;
        x + m * (y + m * z)
    }

    pub fn at(&self, x: usize, y: usize, z: usize) -> f64 {
        self.data[self.idx(x, y, z)]
    }

    /// One Jacobi sweep over the interior; returns the max update delta.
    pub fn sweep(&mut self) -> f64 {
        let m = self.n + 2;
        let mut max_delta = 0.0f64;
        for z in 1..=self.n {
            for y in 1..=self.n {
                for x in 1..=self.n {
                    let i = x + m * (y + m * z);
                    let v = (self.data[i - 1]
                        + self.data[i + 1]
                        + self.data[i - m]
                        + self.data[i + m]
                        + self.data[i - m * m]
                        + self.data[i + m * m])
                        / 6.0;
                    max_delta = max_delta.max((v - self.data[i]).abs());
                    self.scratch[i] = v;
                    // 5 adds + 1 div per point; one point read + written
                    // (neighbors reused from cache in the ideal model).
                    self.ops.add_flops(6);
                    self.ops.add_bytes(16);
                }
            }
        }
        std::mem::swap(&mut self.data, &mut self.scratch);
        self.sweeps += 1;
        max_delta
    }

    /// Run sweeps until the update falls below `tol`; returns sweeps used.
    pub fn relax(&mut self, tol: f64, max_sweeps: u64) -> u64 {
        for s in 1..=max_sweeps {
            if self.sweep() < tol {
                return s;
            }
        }
        max_sweeps
    }

    /// Measured arithmetic intensity, flops/byte.
    pub fn intensity(&self) -> f64 {
        self.ops.intensity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Laplace problem: fixed boundary x-plane values, zero elsewhere;
    /// Jacobi converges to the harmonic interpolation.
    fn laplace(n: usize) -> Stencil3d {
        Stencil3d::new(n, |x, _, _| if x == 0 { 1.0 } else { 0.0 })
    }

    #[test]
    fn jacobi_converges_monotonically() {
        let mut s = laplace(12);
        let mut last = f64::INFINITY;
        for _ in 0..50 {
            let d = s.sweep();
            assert!(d <= last * 1.5, "delta not shrinking: {d} after {last}");
            last = d;
        }
        assert!(last < 0.05);
    }

    #[test]
    fn converged_solution_respects_maximum_principle() {
        let mut s = laplace(10);
        s.relax(1e-6, 5_000);
        for z in 1..=10 {
            for y in 1..=10 {
                for x in 1..=10 {
                    let v = s.at(x, y, z);
                    assert!((0.0..=1.0).contains(&v), "({x},{y},{z}) = {v}");
                }
            }
        }
        // Interior near the hot boundary is warmer than the far side.
        assert!(s.at(1, 5, 5) > s.at(10, 5, 5));
    }

    #[test]
    fn constant_field_is_a_fixed_point() {
        let mut s = Stencil3d::new(8, |_, _, _| 3.25);
        let d = s.sweep();
        assert!(d < 1e-15);
        assert_eq!(s.at(4, 4, 4), 3.25);
    }

    #[test]
    fn intensity_matches_roofline_assumption() {
        // The roofline module's stencil kernel assumes ~0.5 flops/byte
        // under ideal neighbor reuse; the instrumented kernel counts
        // 6 flops / 16 bytes = 0.375 (read + write per point).
        let mut s = laplace(16);
        s.sweep();
        let i = s.intensity();
        assert!((0.3..0.6).contains(&i), "{i}");
    }

    #[test]
    fn sweep_flop_count_is_6n3() {
        let mut s = laplace(16);
        s.sweep();
        assert_eq!(s.ops.flops, 6 * 16 * 16 * 16);
    }
}
