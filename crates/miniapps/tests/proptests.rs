//! Property-based tests for the mini-app kernels.

use frontier_miniapps::hydro::{Conserved, Hydro1d};
use frontier_miniapps::lu::{lu_factor, lu_solve, Matrix};
use frontier_miniapps::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FFT round trip recovers arbitrary signals (power-of-two sizes).
    #[test]
    fn fft_round_trip(log_n in 3u32..10, seed in 0u64..1000) {
        let n = 1usize << log_n;
        let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let orig: Vec<(f64, f64)> = (0..n).map(|_| (next(), next())).collect();
        let mut data = orig.clone();
        fft_forward(&mut data);
        fft_inverse(&mut data);
        for (a, b) in data.iter().zip(&orig) {
            prop_assert!((a.0 - b.0).abs() < 1e-9);
            prop_assert!((a.1 - b.1).abs() < 1e-9);
        }
    }

    /// FFT is linear: F(a·x) = a·F(x).
    #[test]
    fn fft_is_linear(scale in 0.1f64..10.0) {
        let n = 64usize;
        let base: Vec<(f64, f64)> = (0..n).map(|i| ((i as f64).cos(), 0.0)).collect();
        let mut fx = base.clone();
        fft_forward(&mut fx);
        let mut fax: Vec<(f64, f64)> = base.iter().map(|c| (c.0 * scale, c.1 * scale)).collect();
        fft_forward(&mut fax);
        for (a, b) in fax.iter().zip(&fx) {
            prop_assert!((a.0 - b.0 * scale).abs() < 1e-8);
            prop_assert!((a.1 - b.1 * scale).abs() < 1e-8);
        }
    }

    /// LU solves random well-conditioned systems.
    #[test]
    fn lu_solves_random_systems(n in 16usize..64, seed in 0u64..500) {
        let a = Matrix::test_matrix(n, seed);
        let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.71).sin()).collect();
        let b = a.matvec(&x_true);
        let mut f = a.clone();
        let (piv, ops) = lu_factor(&mut f);
        let x = lu_solve(&f, &piv, &b);
        for (xs, xt) in x.iter().zip(&x_true) {
            prop_assert!((xs - xt).abs() < 1e-7);
        }
        // Exact count: sum of m + 2m^2 for m in 0..n = n(n-1)/2 +
        // n(n-1)(2n-1)/3, which approaches 2/3 n^3.
        let nf = n as f64;
        let exact = nf * (nf - 1.0) / 2.0 + nf * (nf - 1.0) * (2.0 * nf - 1.0) / 3.0;
        prop_assert_eq!(ops.flops as f64, exact);
    }

    /// Hydro from any physical uniform state stays physical and conserved.
    #[test]
    fn hydro_uniform_states_are_fixed_points(
        rho in 0.05f64..5.0,
        v in -2.0f64..2.0,
        p in 0.05f64..5.0,
    ) {
        let mut h = Hydro1d::sod(64);
        for c in h.cells.iter_mut() {
            *c = Conserved::from_primitive(rho, v, p);
        }
        let (m0, e0) = h.totals();
        for _ in 0..20 {
            h.step();
        }
        let (m1, e1) = h.totals();
        prop_assert!((m1 - m0).abs() / m0 < 1e-9);
        prop_assert!((e1 - e0).abs() / e0 < 1e-9);
        for c in &h.cells {
            prop_assert!(c.rho > 0.0 && c.pressure() > 0.0);
            // A uniform state is an exact fixed point up to roundoff.
            prop_assert!((c.rho - rho).abs() < 1e-9);
        }
    }

    /// Riemann-problem initial data (two arbitrary physical states) stays
    /// physical through the HLL update.
    #[test]
    fn hydro_riemann_problems_stay_physical(
        rl in 0.1f64..4.0, pl in 0.1f64..4.0,
        rr in 0.1f64..4.0, pr in 0.1f64..4.0,
    ) {
        let mut h = Hydro1d::sod(128);
        let n = h.cells.len();
        for (i, c) in h.cells.iter_mut().enumerate() {
            *c = if i < n / 2 {
                Conserved::from_primitive(rl, 0.0, pl)
            } else {
                Conserved::from_primitive(rr, 0.0, pr)
            };
        }
        for _ in 0..60 {
            h.step();
        }
        for c in &h.cells {
            prop_assert!(c.rho > 0.0, "negative density");
            prop_assert!(c.pressure() > 0.0, "negative pressure");
        }
    }

    /// Jacobi sweeps never push values outside the initial bounds
    /// (discrete maximum principle for the averaging stencil).
    #[test]
    fn stencil_respects_bounds(seed in 0u64..200) {
        let state = std::cell::Cell::new(seed | 1);
        let mut s = Stencil3d::new(8, |_, _, _| {
            let mut v = state.get();
            v ^= v << 13;
            v ^= v >> 7;
            v ^= v << 17;
            state.set(v);
            (v >> 11) as f64 / (1u64 << 53) as f64
        });
        for _ in 0..10 {
            s.sweep();
        }
        for z in 1..=8 {
            for y in 1..=8 {
                for x in 1..=8 {
                    let v = s.at(x, y, z);
                    prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
                }
            }
        }
    }
}
