//! Cross-validation: the mini-app kernels' measured op/byte densities
//! must match the assumptions baked into the frontier-apps/node proxy
//! models — if someone changes a kernel or a model constant, this suite
//! catches the divergence.

use frontier_miniapps::prelude::*;
use frontier_node::gemm::Precision;
use frontier_node::roofline::{Kernel, Roofline};

#[test]
fn fft_op_count_matches_gests_model_constant() {
    // apps::fft charges local FFT passes by bytes; the canonical flop
    // count 5·N·log2(N) determines the compute:memory balance. Verify the
    // real kernel hits it exactly.
    let n = 4096usize;
    let mut data = vec![(1.0f64, 0.0f64); n];
    let ops = fft_forward(&mut data);
    let expect = 5.0 * n as f64 * (n as f64).log2();
    assert_eq!(ops.flops as f64, expect);
}

#[test]
fn fft_is_memory_bound_on_a_gcd() {
    // The GESTS proxy treats the local transform as HBM-bound; confirm
    // against the roofline: FFT intensity ~ 5·log2(N)/(2·16) flops/byte
    // per pass stays below the FP64 ridge (~15) for any practical N.
    let n = 1u64 << 40; // absurdly large transform
    let intensity = 5.0 * (n as f64).log2() / 32.0;
    let r = Roofline::mi250x_gcd();
    assert!(
        r.is_memory_bound(Kernel::new(intensity, Precision::Fp64)),
        "FFT intensity {intensity} should sit below the ridge {}",
        r.ridge_point(Precision::Fp64)
    );
}

#[test]
fn lu_flop_count_matches_hpl_model() {
    // apps::hpl sums 2·nb·m² trailing updates ≈ 2/3·n³; the real
    // factorization must match.
    let n = 160usize;
    let mut m = frontier_miniapps::lu::Matrix::test_matrix(n, 5);
    let (_, ops) = frontier_miniapps::lu::lu_factor(&mut m);
    let expect = 2.0 / 3.0 * (n as f64).powi(3);
    let err = (ops.flops as f64 - expect).abs() / expect;
    assert!(err < 0.02, "{} vs {expect}", ops.flops);
}

#[test]
fn hydro_kernel_is_memory_bound_like_the_cholla_proxy_assumes() {
    // caar::cholla() uses Bound::memory(); check the real kernel's
    // intensity sits well below the GCD ridge point.
    let mut h = Hydro1d::sod(256);
    h.run_until(0.1);
    let intensity = h.ops.intensity();
    let r = Roofline::mi250x_gcd();
    assert!(
        r.is_memory_bound(frontier_node::roofline::Kernel::new(
            intensity,
            Precision::Fp64
        )),
        "hydro intensity {intensity} vs ridge {}",
        r.ridge_point(Precision::Fp64)
    );
}

#[test]
fn stencil_attainable_rate_comes_from_the_memory_roof() {
    // A 7-point stencil at its measured intensity attains far below the
    // compute roof — the reason AthenaPK's proxy is memory-bound.
    let mut s = Stencil3d::new(16, |x, _, _| x as f64);
    s.sweep();
    let r = Roofline::mi250x_gcd();
    let k = frontier_node::roofline::Kernel::new(s.intensity(), Precision::Fp64);
    let attained = r.attainable(k);
    assert!(attained.as_tf() < 1.0, "{}", attained.as_tf());
}

#[test]
fn gemm_intensity_is_past_the_ridge() {
    // Dense GEMM at practical sizes: intensity N/8-ish >> ridge — the
    // compute-bound side of the split (LSMS, CoMet, HPL).
    let r = Roofline::mi250x_gcd();
    for n in [1024.0, 8192.0] {
        let intensity = n / 8.0;
        assert!(!r.is_memory_bound(frontier_node::roofline::Kernel::new(
            intensity,
            Precision::Fp64
        )));
    }
}
