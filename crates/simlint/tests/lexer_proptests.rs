//! Property tests for the hand-rolled lexer, plus fixture cases for the
//! constructs that historically break token-level linters: raw strings
//! with hash fences, nested block comments, lifetimes inside generic
//! argument lists, and escaped char literals.

use proptest::collection::vec;
use proptest::prelude::*;
use simlint::lexer::{lex, TokKind};

/// Alphabet weighted toward the characters that open or close lexer
/// modes (quotes, slashes, hash fences, ticks, escapes), so random
/// inputs actually exercise the string/comment/char-literal machinery.
const ALPHABET: &[char] = &[
    '"', '\'', '/', '*', '#', 'r', 'b', '\\', '\n', '{', '}', '(', ')', ':', '.', '<', '>', '_',
    'a', 'z', 'A', '0', '9', ' ', '\t', ';', '=', '&', '!',
];

/// Map a sampled code onto the alphabet, with the tail of the range
/// passing through as raw unicode for coverage beyond ASCII.
fn chr(c: u32) -> char {
    match char::from_u32(c) {
        Some(ch) if c >= 512 => ch,
        _ => ALPHABET[(c as usize) % ALPHABET.len()],
    }
}

fn src_of(codes: &[u32]) -> String {
    codes.iter().map(|&c| chr(c)).collect()
}

proptest! {
    /// The lexer must never panic and must report sane, monotonically
    /// nondecreasing line numbers on arbitrary input — it runs on every
    /// file in the workspace, including ones mid-edit.
    #[test]
    fn lex_never_panics_and_lines_are_monotonic(codes in vec(0u32..1200, 0..160)) {
        let src = src_of(&codes);
        let lexed = lex(&src);
        let mut last = 1u32;
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1);
            prop_assert!(t.line >= last, "line went backwards at {:?}", t);
            last = t.line;
        }
        for c in &lexed.comments {
            prop_assert!(c.line >= 1);
        }
    }

    /// Round-trip stability: token texts are idents and single puncts,
    /// so re-lexing the space-joined token stream must reproduce the
    /// same (kind, text) sequence. This pins down that no token text
    /// smuggles construct-forming characters (quotes, comment openers)
    /// out of the lexer.
    #[test]
    fn spaced_relex_is_stable(codes in vec(0u32..1200, 0..160)) {
        let src = src_of(&codes);
        let first = lex(&src);
        let joined = first
            .tokens
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let second = lex(&joined);
        let a: Vec<(TokKind, &str)> =
            first.tokens.iter().map(|t| (t.kind, t.text.as_str())).collect();
        let b: Vec<(TokKind, &str)> =
            second.tokens.iter().map(|t| (t.kind, t.text.as_str())).collect();
        prop_assert_eq!(a, b);
    }

    /// Lexing is a pure function: same input, same output.
    #[test]
    fn lex_is_deterministic(codes in vec(0u32..1200, 0..160)) {
        let src = src_of(&codes);
        let a = lex(&src);
        let b = lex(&src);
        let ka: Vec<(TokKind, &str, u32)> =
            a.tokens.iter().map(|t| (t.kind, t.text.as_str(), t.line)).collect();
        let kb: Vec<(TokKind, &str, u32)> =
            b.tokens.iter().map(|t| (t.kind, t.text.as_str(), t.line)).collect();
        prop_assert_eq!(ka, kb);
        prop_assert_eq!(a.comments.len(), b.comments.len());
    }
}

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn raw_strings_with_hash_fences_are_opaque() {
    // Quotes and a fake `HashMap` inside the raw string must not leak
    // into the token stream; lexing resumes cleanly after the fence.
    let src = "let s = r#\"quote \" and HashMap inside\"#;\nnext(1);\n";
    let toks = idents(src);
    assert_eq!(toks, vec!["let", "s", "next", "1"]);
    let lexed = lex(src);
    let next = lexed.tokens.iter().find(|t| t.is_ident("next"));
    assert_eq!(next.map(|t| t.line), Some(2));
}

#[test]
fn raw_byte_strings_count_embedded_newlines() {
    let src = "let s = br##\"line\nline\"# not the end\n\"##;\nafter();\n";
    let lexed = lex(src);
    let after = lexed.tokens.iter().find(|t| t.is_ident("after"));
    assert_eq!(after.map(|t| t.line), Some(4));
}

#[test]
fn nested_block_comments_close_at_matching_depth() {
    let src = "/* outer /* inner */ still comment */ fn f() {}\n";
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 1);
    let toks: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
    assert_eq!(toks, vec!["fn", "f", "(", ")", "{", "}"]);
}

#[test]
fn static_lifetime_in_generics_is_not_a_char_literal() {
    // `'s` must not open a char literal and swallow the rest of the
    // signature; the lifetime tick drops and `static` lexes as an ident.
    let src = "fn f<'a, T: 'static>(x: &'a str, y: &'static [u8]) -> T { g(x, y) }\n";
    let toks = idents(src);
    assert!(toks.contains(&"static".to_string()), "{toks:?}");
    assert!(
        toks.contains(&"g".to_string()),
        "lexer lost the body: {toks:?}"
    );
    assert!(lex(src).tokens.iter().all(|t| !t.text.contains('\'')));
}

#[test]
fn escaped_char_literals_do_not_desync() {
    // `'\''` ends at the real closing quote, not the escaped one.
    let src = "let q = '\\''; let nl = '\\n'; done();\n";
    let toks = idents(src);
    assert_eq!(toks, vec!["let", "q", "let", "nl", "done"]);
}
