//! Integration tests for the workspace call graph: cross-crate edge
//! resolution, method-vs-free-fn disambiguation, cycle termination, and
//! run-to-run determinism of the serialized graph.

use std::collections::BTreeSet;

use simlint::graph::{Graph, NodeId, TOPLEVEL};
use simlint::parse::{self, ParsedFile};
use simlint::source::SourceFile;

fn file(rel: &str, src: &str) -> (SourceFile, ParsedFile) {
    let f = SourceFile::parse(rel, src);
    let p = parse::parse(&f);
    (f, p)
}

fn node_named(g: &Graph, qual: &str) -> NodeId {
    g.nodes
        .iter()
        .position(|n| n.qual == qual)
        .unwrap_or_else(|| panic!("no node `{qual}` in {:?}", quals(g)))
}

fn quals(g: &Graph) -> Vec<&str> {
    g.nodes.iter().map(|n| n.qual.as_str()).collect()
}

#[test]
fn cross_crate_calls_are_reachable_with_provenance() {
    let files = vec![
        file("crates/a/src/lib.rs", "pub fn entry() { helper(); }\n"),
        file(
            "crates/b/src/lib.rs",
            "pub fn helper() { leaf(); }\nfn leaf() {}\n",
        ),
    ];
    let g = Graph::build(&files);
    let entry = node_named(&g, "entry");
    let helper = node_named(&g, "helper");
    let leaf = node_named(&g, "leaf");

    let seeds: BTreeSet<NodeId> = [entry].into_iter().collect();
    let reach = g.reachable_from(&seeds);
    assert_eq!(reach.get(&helper), Some(&entry), "edge crosses the crate");
    assert_eq!(reach.get(&leaf), Some(&entry), "transitive, same seed");
}

#[test]
fn qualified_calls_prefer_the_impl_type_over_free_fns() {
    let files = vec![
        file("crates/a/src/lib.rs", "pub fn step() {}\n"),
        file(
            "crates/b/src/lib.rs",
            "pub struct Solver;\nimpl Solver { pub fn step(&self) {} }\n",
        ),
        file(
            "crates/c/src/lib.rs",
            "pub fn run(s: &Solver) { Solver::step(s); }\n",
        ),
    ];
    let g = Graph::build(&files);
    let method = node_named(&g, "Solver::step");
    let free = node_named(&g, "step");

    // Qualified resolution pins the impl type; unqualified (including
    // `.step()` method syntax) over-approximates to every definer.
    assert_eq!(g.resolve("step", Some("Solver")), vec![method]);
    let unqual = g.resolve("step", None);
    assert!(
        unqual.contains(&method) && unqual.contains(&free),
        "{unqual:?}"
    );

    // And the `run` node's outgoing edge lands on the method only.
    let run = node_named(&g, "run");
    assert!(g.edges[run].contains(&method));
    assert!(!g.edges[run].contains(&free));
}

#[test]
fn call_cycles_terminate_and_stay_reachable() {
    let files = vec![file(
        "crates/a/src/lib.rs",
        "pub fn ping() { pong(); }\npub fn pong() { ping(); }\n",
    )];
    let g = Graph::build(&files);
    let ping = node_named(&g, "ping");
    let pong = node_named(&g, "pong");
    let seeds: BTreeSet<NodeId> = [ping].into_iter().collect();
    let reach = g.reachable_from(&seeds);
    assert!(reach.contains_key(&ping) && reach.contains_key(&pong));
}

#[test]
fn module_level_calls_attach_to_the_toplevel_pseudo_node() {
    let files = vec![file(
        "crates/a/src/lib.rs",
        "static SEED: u64 = derive_seed();\nfn derive_seed() -> u64 { 7 }\n",
    )];
    let g = Graph::build(&files);
    let top = g
        .toplevel_node("crates/a/src/lib.rs")
        .unwrap_or_else(|| panic!("no toplevel node in {:?}", quals(&g)));
    assert_eq!(g.nodes[top].name, TOPLEVEL);
    let derive = node_named(&g, "derive_seed");
    assert!(g.edges[top].contains(&derive));
}

#[test]
fn graph_json_is_byte_stable_across_builds() {
    let srcs = [
        (
            "crates/b/src/lib.rs",
            "pub fn helper() { leaf(); }\nfn leaf() {}\n",
        ),
        (
            "crates/a/src/render.rs",
            "pub fn render_all() { helper(); }\n",
        ),
    ];
    let build = || {
        let files: Vec<_> = srcs.iter().map(|(r, s)| file(r, s)).collect();
        Graph::build(&files)
    };
    let (g1, g2) = (build(), build());
    let sinks: BTreeSet<NodeId> = [node_named(&g1, "render_all")].into_iter().collect();
    let reach = g1.reachable_from(&sinks);
    let reach2 = g2.reachable_from(&sinks);
    assert_eq!(g1.to_json(&sinks, &reach), g2.to_json(&sinks, &reach2));
}
