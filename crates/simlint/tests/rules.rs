//! Per-rule fixture tests (positive / negative / suppressed) plus the
//! workspace self-check: the lint must run clean on this repository with
//! an exactly-tight ratchet, and the workspace fixes must be load-bearing
//! (deleting any allow or sort fix reintroduces a gating diagnostic,
//! which these tests would then fail to observe as "suppressed").

use simlint::diag::Diagnostic;
use simlint::rules::{
    BARE_ALLOW, FLOAT_ORDER, GLOBAL_METRICS, HASH_ITER, HASH_ITER_REACH, PANIC_IN_LIB,
    PAR_RAW_ATOMIC, SCOPE_DROP, UNKEYED_RNG, WALLCLOCK,
};

/// (rule, line, suppressed) triples for compact assertions.
fn shape(diags: &[Diagnostic]) -> Vec<(&'static str, u32, bool)> {
    diags
        .iter()
        .map(|d| (d.rule, d.line, d.suppressed))
        .collect()
}

fn lint(rel: &str, src: &str) -> Vec<Diagnostic> {
    simlint::analyze_source(rel, src)
}

const RENDER_PATH: &str = "crates/sim-core/src/table.rs";
const LIB_PATH: &str = "crates/fabric/src/solver.rs";

// ---- R1: hash-iter-render (+ R7 subsumption on render paths) -------------

#[test]
fn r1_flags_decls_and_iteration_in_render_paths() {
    // Every r1 hit in a render-path file is also an r7 hit: the graph
    // rule strictly subsumes the path heuristic there. `hash-iter-reach`
    // sorts before `hash-iter-render` at the same line.
    let diags = lint(RENDER_PATH, include_str!("fixtures/r1_positive.rs"));
    assert_eq!(
        shape(&diags),
        vec![
            (HASH_ITER_REACH, 1, false), // use std::collections::HashMap
            (HASH_ITER, 1, false),
            (HASH_ITER_REACH, 4, false), // let m: HashMap<..> = HashMap::new()
            (HASH_ITER, 4, false),
            (HASH_ITER_REACH, 6, false), // for (k, v) in &m
            (HASH_ITER, 6, false),
            (HASH_ITER_REACH, 10, false), // m.keys()
            (HASH_ITER, 10, false)
        ]
    );
}

#[test]
fn r1_ignores_btreemap_and_test_mods() {
    let clean = include_str!("fixtures/r1_clean.rs");
    assert!(lint(RENDER_PATH, clean).is_empty());
}

#[test]
fn r7_extends_r1_beyond_render_paths() {
    // Outside a render path r1 stays silent, but the fixture's fn is
    // named `render` — a name sink — so r7 still flags the *iteration*
    // sites (decls and keyed lookups leak no order there).
    let positive = include_str!("fixtures/r1_positive.rs");
    let diags = lint("crates/fabric/src/topology.rs", positive);
    assert_eq!(
        shape(&diags),
        vec![(HASH_ITER_REACH, 6, false), (HASH_ITER_REACH, 10, false)]
    );
}

#[test]
fn r1_suppressions_mark_but_do_not_gate() {
    // An allow(hash-iter-render) carries over to hash-iter-reach at the
    // same site — fixing for r1 must not re-open the finding under r7.
    let diags = lint(RENDER_PATH, include_str!("fixtures/r1_suppressed.rs"));
    assert_eq!(
        shape(&diags),
        vec![
            (HASH_ITER_REACH, 2, true),
            (HASH_ITER, 2, true),
            (HASH_ITER_REACH, 6, true),
            (HASH_ITER, 6, true)
        ]
    );
    assert!(diags.iter().all(|d| !d.is_failure()));
}

// ---- R2: wallclock -------------------------------------------------------

#[test]
fn r2_flags_clock_reads_in_lib_and_bin() {
    let src = include_str!("fixtures/r2_positive.rs");
    let diags = lint(LIB_PATH, src);
    assert_eq!(
        shape(&diags),
        vec![
            (WALLCLOCK, 1, false),
            (WALLCLOCK, 4, false),
            (WALLCLOCK, 9, false)
        ]
    );
    assert!(!lint("crates/bench/src/bin/repro.rs", src).is_empty());
}

#[test]
fn r2_allows_the_wallclock_module_and_benches() {
    let src = include_str!("fixtures/r2_positive.rs");
    assert!(lint("crates/sim-core/src/metrics.rs", src).is_empty());
    assert!(lint("crates/bench/benches/bench_maxmin.rs", src).is_empty());
    assert!(lint("crates/fabric/tests/proptests.rs", src).is_empty());
}

#[test]
fn r2_suppressed_with_justification() {
    let diags = lint(LIB_PATH, include_str!("fixtures/r2_suppressed.rs"));
    assert_eq!(
        shape(&diags),
        vec![(WALLCLOCK, 2, true), (WALLCLOCK, 5, true)]
    );
}

// ---- R3: unkeyed-rng -----------------------------------------------------

#[test]
fn r3_flags_entropy_sources_everywhere_even_tests() {
    let src = include_str!("fixtures/r3_positive.rs");
    let diags = lint(LIB_PATH, src);
    assert_eq!(
        shape(&diags),
        vec![
            (UNKEYED_RNG, 1, false),
            (UNKEYED_RNG, 4, false),
            (UNKEYED_RNG, 6, false)
        ]
    );
    // Determinism discipline extends to test code.
    assert_eq!(lint("crates/fabric/tests/proptests.rs", src).len(), 3);
}

#[test]
fn r3_keyed_streams_are_clean() {
    assert!(lint(LIB_PATH, include_str!("fixtures/r3_clean.rs")).is_empty());
}

// ---- R4: par-raw-atomic --------------------------------------------------

#[test]
fn r4_flags_raw_rmw_inside_rayon_constructs() {
    let diags = lint(LIB_PATH, include_str!("fixtures/r4_positive.rs"));
    assert_eq!(
        shape(&diags),
        vec![
            (PAR_RAW_ATOMIC, 6, false),  // fetch_add in par_iter closure
            (PAR_RAW_ATOMIC, 12, false), // fetch_max in rayon::join arm
            (PAR_RAW_ATOMIC, 13, false),
            (PAR_RAW_ATOMIC, 23, false) // fetch_max in windowed into_par_iter group
        ]
    );
}

#[test]
fn r4_serial_rmw_and_commutative_metrics_are_clean() {
    assert!(lint(LIB_PATH, include_str!("fixtures/r4_clean.rs")).is_empty());
}

// ---- R5: panic-in-lib ----------------------------------------------------

#[test]
fn r5_flags_unwrap_expect_panic_in_lib_code() {
    let diags = lint(LIB_PATH, include_str!("fixtures/r5_positive.rs"));
    assert_eq!(
        shape(&diags),
        vec![
            (PANIC_IN_LIB, 2, false),
            (PANIC_IN_LIB, 3, false),
            (PANIC_IN_LIB, 5, false)
        ]
    );
}

#[test]
fn r5_spares_tests_bins_and_fallible_combinators() {
    assert!(lint(LIB_PATH, include_str!("fixtures/r5_clean.rs")).is_empty());
    // The same panicky code in a binary or bench target is allowed.
    let positive = include_str!("fixtures/r5_positive.rs");
    assert!(lint("crates/bench/src/bin/repro.rs", positive).is_empty());
    assert!(lint("crates/bench/benches/tables.rs", positive).is_empty());
}

#[test]
fn r5_suppression_and_the_bare_allow_meta_rule() {
    let diags = lint(LIB_PATH, include_str!("fixtures/r5_suppressed.rs"));
    assert_eq!(
        shape(&diags),
        vec![
            (PANIC_IN_LIB, 3, true), // justified allow: suppressed
            (BARE_ALLOW, 8, false),  // allow without justification: gates
            (PANIC_IN_LIB, 8, true)  // ... though it does still suppress
        ]
    );
}

// ---- R7: hash-iter-reach (graph rule) ------------------------------------

#[test]
fn r7_flags_hash_iteration_reachable_from_a_name_sink() {
    let diags = lint(LIB_PATH, include_str!("fixtures/r7_reach_positive.rs"));
    assert_eq!(shape(&diags), vec![(HASH_ITER_REACH, 6, false)]);
    // The message carries sink provenance: which emitter reaches the
    // iteration, and where it lives.
    assert!(
        diags[0].message.contains("snapshot_totals"),
        "{}",
        diags[0].message
    );
}

#[test]
fn r7_unreachable_iteration_and_keyed_lookups_are_clean() {
    // Same hashy helper, but no sink calls it — and the sink that does
    // exist only does a keyed lookup, which leaks no order.
    let diags = lint(LIB_PATH, include_str!("fixtures/r7_reach_clean.rs"));
    assert!(diags.is_empty(), "{:?}", shape(&diags));
}

// ---- R8: scope-drop (graph rule) -----------------------------------------

#[test]
fn r8_flags_raw_rayon_that_reaches_a_metrics_recorder() {
    let diags = lint(LIB_PATH, include_str!("fixtures/r8_positive.rs"));
    assert_eq!(shape(&diags), vec![(SCOPE_DROP, 11, false)]);
    assert!(diags[0].message.contains("record"), "{}", diags[0].message);
}

#[test]
fn r8_scope_routed_and_recorder_free_regions_are_clean() {
    let diags = lint(LIB_PATH, include_str!("fixtures/r8_clean.rs"));
    assert!(diags.is_empty(), "{:?}", shape(&diags));
    // sim-core is the scope machinery itself and is exempt.
    let positive = include_str!("fixtures/r8_positive.rs");
    assert!(lint("crates/sim-core/src/metrics.rs", positive).is_empty());
}

#[test]
fn r8_suppression_with_justification() {
    let diags = lint(LIB_PATH, include_str!("fixtures/r8_suppressed.rs"));
    assert_eq!(shape(&diags), vec![(SCOPE_DROP, 12, true)]);
    assert!(diags.iter().all(|d| !d.is_failure()));
}

// ---- R9: float-order -----------------------------------------------------

#[test]
fn r9_flags_order_sensitive_float_reductions_in_par_regions() {
    let diags = lint(LIB_PATH, include_str!("fixtures/r9_positive.rs"));
    assert_eq!(
        shape(&diags),
        vec![
            (FLOAT_ORDER, 4, false),  // .sum::<f64>()
            (FLOAT_ORDER, 9, false),  // float reduce closure
            (FLOAT_ORDER, 15, false)  // partial_cmp comparator
        ]
    );
}

#[test]
fn r9_integer_sums_and_assoc_minmax_reducers_are_clean() {
    let diags = lint(LIB_PATH, include_str!("fixtures/r9_clean.rs"));
    assert!(diags.is_empty(), "{:?}", shape(&diags));
}

// ---- R10: global-metrics -------------------------------------------------

#[test]
fn r10_flags_global_registry_binding_in_lib_code() {
    let diags = lint(LIB_PATH, include_str!("fixtures/r10_positive.rs"));
    assert_eq!(
        shape(&diags),
        vec![(GLOBAL_METRICS, 4, false), (GLOBAL_METRICS, 8, false)]
    );
}

#[test]
fn r10_spares_active_shared_tests_bins_and_sim_core() {
    assert!(lint(LIB_PATH, include_str!("fixtures/r10_clean.rs")).is_empty());
    let positive = include_str!("fixtures/r10_positive.rs");
    // Binaries own the process-level registry (snapshot/reset at exit).
    assert!(lint("crates/campaign/src/bin/campaign.rs", positive).is_empty());
    // Integration tests pin global behavior directly.
    assert!(lint("crates/fabric/tests/metrics_proptests.rs", positive).is_empty());
    // sim-core is the scope machinery itself.
    assert!(lint("crates/sim-core/src/trace.rs", positive).is_empty());
}

// ---- workspace self-check ------------------------------------------------

#[test]
fn workspace_is_clean() {
    let outcome = simlint::run_workspace(&simlint::default_root()).expect("scan workspace");
    let failures: Vec<String> = outcome
        .failures()
        .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
        .collect();
    assert!(
        failures.is_empty() && outcome.ratchet_delta.over.is_empty(),
        "simlint found gating diagnostics:\n{}\nratchet over:\n{}",
        failures.join("\n"),
        outcome.ratchet_delta.over.join("\n")
    );
}

#[test]
fn workspace_ratchet_is_exactly_tight() {
    let outcome = simlint::run_workspace(&simlint::default_root()).expect("scan workspace");
    assert!(
        outcome.ratchet_delta.under.is_empty(),
        "debt shrank below simlint.ratchet — run `cargo run -p simlint -- --update-ratchet`:\n{}",
        outcome.ratchet_delta.under.join("\n")
    );
}

#[test]
fn workspace_rules_are_live_not_vacuous() {
    let outcome = simlint::run_workspace(&simlint::default_root()).expect("scan workspace");
    let suppressed_rules: Vec<&str> = outcome
        .diagnostics
        .iter()
        .filter(|d| d.suppressed)
        .map(|d| d.rule)
        .collect();
    // The workspace carries real, justified suppressions for these rules;
    // deleting any one allow comment turns the suppressed diagnostic into
    // a gating failure (see workspace_is_clean).
    for rule in [
        HASH_ITER,
        HASH_ITER_REACH,
        SCOPE_DROP,
        WALLCLOCK,
        PANIC_IN_LIB,
    ] {
        assert!(
            suppressed_rules.contains(&rule),
            "expected at least one justified suppression for `{rule}` in the workspace"
        );
    }
    // And the panic budget is non-empty but bounded by the ratchet.
    assert!(
        outcome.diagnostics.iter().any(|d| d.ratcheted),
        "expected ratcheted panic-in-lib debt outside fabric/sim-core"
    );
}

#[test]
fn workspace_graph_json_is_deterministic() {
    let root = simlint::default_root();
    let a = simlint::run_workspace(&root).expect("scan workspace");
    let b = simlint::run_workspace(&root).expect("scan workspace");
    assert_eq!(a.graph_json, b.graph_json, "graph JSON must be run-stable");
    assert!(a.graph_json.contains("\"sink\""));
}
