use rayon::prelude::*;

pub fn total(xs: &[u64]) -> u64 {
    xs.par_iter().sum::<u64>()
}

pub fn coldest(xs: &[f64]) -> f64 {
    xs.par_iter().copied().reduce(|| f64::INFINITY, f64::min)
}

pub fn hottest(xs: &[f64]) -> Option<f64> {
    xs.par_iter().copied().max_by(|a, b| a.total_cmp(b))
}
