use rand::thread_rng;

pub fn jitter() -> f64 {
    let mut rng = thread_rng();
    let _ = &mut rng;
    let seeded = SmallRng::from_entropy();
    let _ = seeded;
    0.0
}
