use frontier_sim_core::metrics;
use rayon::prelude::*;

fn record(x: u64) {
    if let Some(m) = metrics::active() {
        m.counter("fabric.swept").add(x);
    }
}

pub fn sweep(xs: &[u64]) {
    metrics::Scope::current().par_map(xs, |x| record(*x));
}

pub fn sum_sq(xs: &[u64]) -> u64 {
    xs.par_iter().map(|x| x * x).sum()
}
