use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

pub fn serial_tally(v: &[u64], total: &AtomicU64) {
    for x in v {
        total.fetch_add(*x, Ordering::Relaxed);
    }
}

pub fn metric_tally(v: &[u64], c: &frontier_sim_core::metrics::Counter) {
    v.par_iter().for_each(|x| {
        c.add(*x);
    });
}
