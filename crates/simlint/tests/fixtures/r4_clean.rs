use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

pub fn serial_tally(v: &[u64], total: &AtomicU64) {
    for x in v {
        total.fetch_add(*x, Ordering::Relaxed);
    }
}

pub fn metric_tally(v: &[u64], c: &frontier_sim_core::metrics::Counter) {
    v.par_iter().for_each(|x| {
        c.add(*x);
    });
}

// The pdes window shape: disjoint &mut result slices per link group,
// each task folding a private accumulator — no shared atomics.
pub fn windowed_groups(groups: Vec<(&[u64], &mut [u64])>) {
    groups.into_par_iter().for_each(|(idxs, out)| {
        let mut acc = 0u64;
        for (j, x) in idxs.iter().enumerate() {
            acc = acc.max(*x);
            out[j] = acc;
        }
    });
}
