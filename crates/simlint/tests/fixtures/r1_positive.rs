use std::collections::HashMap;

pub fn render() -> String {
    let m: HashMap<String, u64> = HashMap::new();
    let mut out = String::new();
    for (k, v) in &m {
        out.push_str(k);
        let _ = v;
    }
    for k in m.keys() {
        out.push_str(k);
    }
    out
}
