use std::collections::BTreeMap;

pub fn render() -> String {
    let m: BTreeMap<String, u64> = BTreeMap::new();
    let mut out = String::new();
    for (k, v) in &m {
        out.push_str(k);
        let _ = v;
    }
    out
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn scratch_map_in_tests_is_fine() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
    }
}
