pub fn freeze(rates: &[f64], i: usize) -> f64 {
    // simlint::allow(panic-in-lib): index produced by the same solver pass; cheaper than Result in the hot loop
    let r = rates.get(i).expect("flow outside its component");
    r + 0.0
}

pub fn bare(rates: &[f64]) -> f64 {
    *rates.first().unwrap() // simlint::allow(panic-in-lib)
}
