use frontier_sim_core::rng::StreamRng;

pub fn draw(seed: u64, component: u32, index: u64) -> f64 {
    // Keyed stream: identical draws under any thread schedule.
    let mut rng = StreamRng::keyed(seed, component, index);
    rng.uniform()
}
