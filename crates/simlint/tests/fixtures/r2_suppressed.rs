// simlint::allow(wallclock): operator-facing elapsed print, never part of compared output
use std::time::Instant;

pub fn banner() {
    let t0 = Instant::now(); // simlint::allow(wallclock): same — stderr progress only
    let _ = t0;
}
