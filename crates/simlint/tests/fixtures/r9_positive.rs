use rayon::prelude::*;

pub fn mean(xs: &[f64]) -> f64 {
    let total = xs.par_iter().sum::<f64>();
    total / xs.len() as f64
}

pub fn spread(xs: &[f64]) -> f64 {
    xs.par_iter().copied().reduce(|| 0.0, |a, b| a + b)
}

pub fn max_latency(xs: &[f64]) -> Option<f64> {
    xs.par_iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
}
