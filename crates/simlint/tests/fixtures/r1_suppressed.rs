// simlint::allow(hash-iter-render): keyed lookup only, never iterated
use std::collections::HashMap;

pub struct Cache {
    // simlint::allow(hash-iter-render): entries drain into a BTreeMap before rendering
    entries: HashMap<String, u64>,
}
