use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

pub fn tally(v: &[u64], total: &AtomicU64) {
    v.par_iter().for_each(|x| {
        total.fetch_add(*x, Ordering::Relaxed);
    });
}

pub fn race_max(v: &[u64], hi: &AtomicU64) -> u64 {
    let (_, _) = rayon::join(
        || hi.fetch_max(v[0], Ordering::SeqCst),
        || hi.fetch_max(v[1], Ordering::SeqCst),
    );
    hi.load(Ordering::SeqCst)
}

// A window executor that races per-link state through a raw atomic
// instead of carving disjoint &mut group slices.
pub fn windowed_race(groups: Vec<&[u64]>, busy: &AtomicU64) {
    groups.into_par_iter().for_each(|g| {
        for x in g {
            busy.fetch_max(*x, Ordering::Relaxed);
        }
    });
}
