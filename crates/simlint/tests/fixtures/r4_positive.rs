use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

pub fn tally(v: &[u64], total: &AtomicU64) {
    v.par_iter().for_each(|x| {
        total.fetch_add(*x, Ordering::Relaxed);
    });
}

pub fn race_max(v: &[u64], hi: &AtomicU64) -> u64 {
    let (_, _) = rayon::join(
        || hi.fetch_max(v[0], Ordering::SeqCst),
        || hi.fetch_max(v[1], Ordering::SeqCst),
    );
    hi.load(Ordering::SeqCst)
}
