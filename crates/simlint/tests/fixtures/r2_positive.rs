use std::time::Instant;

pub fn elapsed_ms() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64() * 1e3
}

pub fn epoch() -> u64 {
    let now = std::time::SystemTime::now();
    let _ = now;
    0
}
