pub fn pick(v: &[u64]) -> u64 {
    let first = v.first().unwrap();
    let second = v.get(1).expect("needs two elements");
    if *first == 0 {
        panic!("zero is not a valid rate");
    }
    *second
}
