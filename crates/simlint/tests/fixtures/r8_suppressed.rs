use frontier_sim_core::metrics;
use rayon::prelude::*;

fn record(x: u64) {
    if let Some(m) = metrics::active() {
        m.counter("fabric.swept").add(x);
    }
}

pub fn sweep(xs: &[u64]) {
    // simlint::allow(scope-drop): callers install no scope here; these counters are audited as process-global totals
    xs.par_iter().for_each(|x| record(*x));
}
