use std::collections::HashMap;

fn tally() -> u64 {
    let m: HashMap<String, u64> = HashMap::new();
    let mut total = 0;
    for (_k, v) in &m {
        total += v;
    }
    total
}

pub fn snapshot_totals() -> u64 {
    tally()
}
