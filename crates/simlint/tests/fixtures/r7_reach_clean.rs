use std::collections::HashMap;

fn tally() -> u64 {
    let m: HashMap<String, u64> = HashMap::new();
    let mut total = 0;
    for (_k, v) in &m {
        total += v;
    }
    total
}

pub fn total_sum() -> u64 {
    tally()
}

pub fn snapshot_one(key: &str) -> u64 {
    let m: HashMap<String, u64> = HashMap::new();
    m.get(key).copied().unwrap_or(0)
}
