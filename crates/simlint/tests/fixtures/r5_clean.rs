pub fn pick(v: &[u64]) -> Option<u64> {
    let first = v.first()?;
    let second = v.get(1).copied().unwrap_or_default();
    if *first == 0 {
        return None;
    }
    Some(second)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(pick(&[1, 2]).unwrap(), 2);
    }
}
