use frontier_sim_core::metrics;

pub fn record_solve() {
    metrics::global().counter("fabric.solve").inc();
}

pub fn snapshot_now() -> metrics::MetricsSnapshot {
    metrics::global().snapshot()
}
