use frontier_sim_core::metrics;

pub fn record_solve() {
    if let Some(m) = metrics::active() {
        m.counter("fabric.solve").inc();
    }
}

pub fn record_cache_build() {
    if let Some(m) = metrics::shared() {
        m.counter("bench.cache.built").inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_inspect_the_global_registry() {
        let snap = metrics::global().snapshot();
        assert!(snap.counters.is_empty());
    }
}
