//! The workspace call graph: one node per `fn` definition (plus a
//! module-level pseudo-node per file), edges from call sites resolved by
//! name. Resolution is deliberately over-approximate — a call to `solve`
//! edges to *every* fn named `solve` in the workspace, and a path call
//! `Type::f(...)` prefers fns defined in an `impl Type` block anywhere —
//! which is the safe direction for reachability-based determinism rules:
//! a false edge can only make a rule look harder, never miss a real
//! data flow.
//!
//! Everything is index- or `BTree`-ordered, so reachability sets, the
//! `--graph-json` dump, and every diagnostic derived from the graph are
//! byte-stable across runs and thread counts (simlint obeys its own
//! hash-order rule).

use crate::diag::json_escape;
use crate::parse::ParsedFile;
use crate::source::{FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Index of a node in [`Graph::nodes`].
pub type NodeId = usize;

/// One call-graph node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Workspace-relative path of the defining file.
    pub file: String,
    pub file_kind: FileKind,
    /// Simple fn name, or [`TOPLEVEL`] for the per-file pseudo-node that
    /// owns module-level code (`use` lines, consts, statics).
    pub name: String,
    /// `Type::name` for methods, `name` for free fns.
    pub qual: String,
    /// 1-based line of the `fn` keyword (1 for the pseudo-node).
    pub line: u32,
    /// Inclusive token span of the body in the defining file. The
    /// pseudo-node's span is `None`: it owns every token outside all fn
    /// bodies.
    pub body: Option<(usize, usize)>,
}

/// Name of the per-file module-level pseudo-node.
pub const TOPLEVEL: &str = "<toplevel>";

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    pub nodes: Vec<Node>,
    /// Adjacency: callees of each node, sorted.
    pub edges: Vec<BTreeSet<NodeId>>,
    /// Simple name → defining nodes, for call resolution.
    name_index: BTreeMap<String, Vec<NodeId>>,
    /// `Type::name` → defining nodes.
    qual_index: BTreeMap<String, Vec<NodeId>>,
    /// File → pseudo-node id.
    toplevel: BTreeMap<String, NodeId>,
    /// (file, fn index within that file's `ParsedFile`) → node id.
    fn_node: BTreeMap<(String, usize), NodeId>,
}

impl Graph {
    /// Build the graph over files sorted by workspace-relative path.
    /// The input order is the node-id order, so ids are deterministic.
    pub fn build(files: &[(SourceFile, ParsedFile)]) -> Graph {
        let mut g = Graph::default();
        for (f, p) in files {
            let top = g.nodes.len();
            g.toplevel.insert(f.rel.clone(), top);
            g.nodes.push(Node {
                file: f.rel.clone(),
                file_kind: f.kind,
                name: TOPLEVEL.to_string(),
                qual: TOPLEVEL.to_string(),
                line: 1,
                body: None,
            });
            for (idx, d) in p.fns.iter().enumerate() {
                let id = g.nodes.len();
                g.fn_node.insert((f.rel.clone(), idx), id);
                g.nodes.push(Node {
                    file: f.rel.clone(),
                    file_kind: f.kind,
                    name: d.name.clone(),
                    qual: d.qual(),
                    line: d.line,
                    body: d.body,
                });
            }
        }
        for (id, n) in g.nodes.iter().enumerate() {
            g.name_index.entry(n.name.clone()).or_default().push(id);
            g.qual_index.entry(n.qual.clone()).or_default().push(id);
        }
        g.edges = vec![BTreeSet::new(); g.nodes.len()];
        for (f, p) in files {
            for c in &p.calls {
                let from = match c.in_fn {
                    Some(idx) => g.fn_node[&(f.rel.clone(), idx)],
                    None => g.toplevel[&f.rel],
                };
                for to in g.resolve(&c.callee, c.qualifier.as_deref()) {
                    g.edges[from].insert(to);
                }
            }
        }
        g
    }

    /// Nodes a call to `callee` (optionally `Qualifier::callee`) may
    /// target. Qualified calls prefer an exact `Type::callee` match and
    /// fall back to every fn named `callee` (module-path qualifiers like
    /// `mpigraph::run` resolve by simple name across crates).
    pub fn resolve(&self, callee: &str, qualifier: Option<&str>) -> Vec<NodeId> {
        if let Some(q) = qualifier {
            if let Some(ids) = self.qual_index.get(&format!("{q}::{callee}")) {
                return ids.clone();
            }
        }
        self.name_index.get(callee).cloned().unwrap_or_default()
    }

    /// Node id of fn `idx` of `file` (as indexed in its [`ParsedFile`]).
    pub fn fn_node(&self, file: &str, idx: usize) -> Option<NodeId> {
        self.fn_node.get(&(file.to_string(), idx)).copied()
    }

    /// Pseudo-node id of `file`'s module-level code.
    pub fn toplevel_node(&self, file: &str) -> Option<NodeId> {
        self.toplevel.get(file).copied()
    }

    /// Forward reachability from `seeds` (inclusive), as a map from each
    /// reached node to the seed it was first reached from. Seeds are
    /// visited in sorted order and adjacency sets iterate sorted, so the
    /// provenance map is deterministic.
    pub fn reachable_from(&self, seeds: &BTreeSet<NodeId>) -> BTreeMap<NodeId, NodeId> {
        let mut via: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
        for &s in seeds {
            via.insert(s, s);
            queue.push_back(s);
        }
        while let Some(at) = queue.pop_front() {
            let seed = via[&at];
            for &next in &self.edges[at] {
                via.entry(next).or_insert_with(|| {
                    queue.push_back(next);
                    seed
                });
            }
        }
        via
    }

    /// Deterministic JSON dump of the graph (for `--graph-json` and the
    /// CI byte-identity gate): nodes in id order, edges sorted, plus the
    /// render-sink seeds and the sink-reachability provenance.
    pub fn to_json(&self, sinks: &BTreeSet<NodeId>, reach: &BTreeMap<NodeId, NodeId>) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"nodes\": [");
        for (id, n) in self.nodes.iter().enumerate() {
            if id > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"id\": {id}, \"file\": {}, \"qual\": {}, \"line\": {}, \
                 \"sink\": {}, \"reaches_from_sink\": {}}}",
                json_escape(&n.file),
                json_escape(&n.qual),
                n.line,
                sinks.contains(&id),
                reach.contains_key(&id)
            );
        }
        if !self.nodes.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"edges\": [");
        let mut first = true;
        for (from, tos) in self.edges.iter().enumerate() {
            for &to in tos {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\n    [{from}, {to}]");
            }
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::source::SourceFile;

    fn build(files: &[(&str, &str)]) -> Graph {
        let parsed: Vec<(SourceFile, ParsedFile)> = files
            .iter()
            .map(|(rel, src)| {
                let f = SourceFile::parse(rel, src);
                let p = parse::parse(&f);
                (f, p)
            })
            .collect();
        Graph::build(&parsed)
    }

    #[test]
    fn cross_file_edges_resolve_by_name() {
        let g = build(&[
            ("crates/a/src/lib.rs", "pub fn entry() { helper(); }\n"),
            (
                "crates/b/src/lib.rs",
                "pub fn helper() { leaf(); }\nfn leaf() {}\n",
            ),
        ]);
        let entry = g.fn_node("crates/a/src/lib.rs", 0).unwrap();
        let helper = g.fn_node("crates/b/src/lib.rs", 0).unwrap();
        let leaf = g.fn_node("crates/b/src/lib.rs", 1).unwrap();
        assert!(g.edges[entry].contains(&helper));
        let reach = g.reachable_from(&BTreeSet::from([entry]));
        assert!(reach.contains_key(&leaf));
        assert_eq!(reach[&leaf], entry, "provenance points at the seed");
    }

    #[test]
    fn qualified_calls_prefer_the_impl_type() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "impl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\nfn f() { A::go(); }\n",
        )]);
        let a_go = g.fn_node("crates/a/src/lib.rs", 0).unwrap();
        let b_go = g.fn_node("crates/a/src/lib.rs", 1).unwrap();
        let f = g.fn_node("crates/a/src/lib.rs", 2).unwrap();
        assert!(g.edges[f].contains(&a_go));
        assert!(!g.edges[f].contains(&b_go), "qualified call is exact");
    }

    #[test]
    fn method_calls_over_approximate_across_impls() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "impl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\nfn f(x: &A) { x.go(); }\n",
        )]);
        let f = g.fn_node("crates/a/src/lib.rs", 2).unwrap();
        assert_eq!(
            g.edges[f].len(),
            2,
            "unqualified method edges to every `go`"
        );
    }

    #[test]
    fn cycles_terminate_and_reach_everything() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() { a(); }\n",
        )]);
        let a = g.fn_node("crates/a/src/lib.rs", 0).unwrap();
        let reach = g.reachable_from(&BTreeSet::from([a]));
        assert_eq!(reach.len(), 3);
    }

    #[test]
    fn graph_json_is_identical_across_builds() {
        let files = [
            ("crates/a/src/lib.rs", "fn a() { b(); }\nfn b() {}\n"),
            ("crates/b/src/lib.rs", "fn c() { a(); }\n"),
        ];
        let g1 = build(&files);
        let g2 = build(&files);
        let seeds = BTreeSet::from([g1.fn_node("crates/b/src/lib.rs", 0).unwrap()]);
        let r1 = g1.reachable_from(&seeds);
        let r2 = g2.reachable_from(&seeds);
        assert_eq!(g1.to_json(&seeds, &r1), g2.to_json(&seeds, &r2));
    }
}
