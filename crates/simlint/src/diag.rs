//! Diagnostics and report rendering (human and JSON). The JSON emitter
//! is hand-rolled and deterministic: diagnostics are sorted by
//! (file, line, rule), maps are `BTreeMap`s — simlint obeys its own
//! hash-order rule.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One finding, before and after suppression/ratchet evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// Suppressed by a `simlint::allow` comment.
    pub suppressed: bool,
    /// Absorbed by the ratchet file (pre-existing debt, may not grow).
    pub ratcheted: bool,
}

impl Diagnostic {
    pub fn new(rule: &'static str, file: &str, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            message,
            suppressed: false,
            ratcheted: false,
        }
    }

    /// Does this diagnostic still gate the build?
    pub fn is_failure(&self) -> bool {
        !self.suppressed && !self.ratcheted
    }
}

/// Canonical ordering so output is byte-stable across runs and thread
/// counts.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

/// Render `file:line: [rule] message` lines for every gating diagnostic.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags.iter().filter(|d| d.is_failure()) {
        let _ = writeln!(out, "{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
    }
    out
}

/// Minimal JSON string escaping, compatible with serde_json's output for
/// the subset we emit (control chars, quotes, backslashes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The machine-readable report uploaded as a CI artifact.
pub fn render_json(
    diags: &[Diagnostic],
    ratchet_over: &[String],
    ratchet_under: &[String],
) -> String {
    let mut per_rule: BTreeMap<&str, (u32, u32, u32)> = BTreeMap::new();
    for d in diags {
        let e = per_rule.entry(d.rule).or_default();
        if d.suppressed {
            e.1 += 1;
        } else if d.ratcheted {
            e.2 += 1;
        } else {
            e.0 += 1;
        }
    }

    let mut out = String::from("{\n  \"version\": 1,\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"suppressed\": {}, \"ratcheted\": {}}}",
            json_escape(d.rule),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message),
            d.suppressed,
            d.ratcheted
        );
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"summary\": {");
    for (i, (rule, (fail, supp, ratch))) in per_rule.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {}: {{\"failing\": {fail}, \"suppressed\": {supp}, \"ratcheted\": {ratch}}}",
            json_escape(rule)
        );
    }
    if !per_rule.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"ratchet\": {\"over\": [");
    for (i, k) in ratchet_over.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_escape(k));
    }
    out.push_str("], \"under\": [");
    for (i, k) in ratchet_under.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_escape(k));
    }
    out.push_str("]}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_lists_only_failures() {
        let mut d = vec![
            Diagnostic::new("wallclock", "b.rs", 2, "x".into()),
            Diagnostic::new("wallclock", "a.rs", 1, "y".into()),
        ];
        d[0].suppressed = true;
        sort(&mut d);
        let h = render_human(&d);
        assert!(h.contains("a.rs:1"));
        assert!(!h.contains("b.rs:2"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let d = vec![Diagnostic::new("r", "a\"b.rs", 3, "msg\n".into())];
        let j = render_json(&d, &[], &[]);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("msg\\n"));
        assert!(j.contains("\"failing\": 1"));
    }
}
