//! Minimal SARIF 2.1.0 emitter for CI annotation surfaces (GitHub code
//! scanning, `--sarif`). Hand-rolled like the JSON report: the output is
//! deterministic — diagnostics arrive pre-sorted, rules render in
//! registry order — so two consecutive runs are byte-identical and CI
//! can `cmp` them.

use crate::diag::{json_escape, Diagnostic};
use crate::rules;
use std::fmt::Write as _;

const SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// SARIF severity for one diagnostic: gating findings are errors;
/// suppressed and ratcheted ones are notes (visible, non-blocking).
fn level(d: &Diagnostic) -> &'static str {
    if d.is_failure() {
        "error"
    } else {
        "note"
    }
}

/// Render the full report as a SARIF 2.1.0 log with one run.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"$schema\": {},\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {{\n      \
         \"tool\": {{\n        \"driver\": {{\n          \"name\": \"simlint\",\n          \
         \"informationUri\": \"DESIGN.md#38-simlint\",\n          \"rules\": [",
        json_escape(SCHEMA)
    );
    for (i, r) in rules::RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \
             \"fullDescription\": {{\"text\": {}}}}}",
            json_escape(r.id),
            json_escape(r.summary),
            json_escape(r.invariant)
        );
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n        {{\"ruleId\": {}, \"level\": \"{}\", \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}",
            json_escape(d.rule),
            level(d),
            json_escape(&d.message),
            json_escape(&d.file),
            d.line
        );
    }
    if !diags.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_is_valid_shape_and_deterministic() {
        let mut d = vec![
            Diagnostic::new("wallclock", "a.rs", 3, "clock read".into()),
            Diagnostic::new("panic-in-lib", "b.rs", 7, "unwrap".into()),
        ];
        d[1].ratcheted = true;
        let s1 = render(&d);
        let s2 = render(&d);
        assert_eq!(s1, s2);
        assert!(s1.contains("\"version\": \"2.1.0\""));
        assert!(s1.contains("\"ruleId\": \"wallclock\""));
        assert!(s1.contains("\"level\": \"error\""));
        assert!(
            s1.contains("\"level\": \"note\""),
            "ratcheted renders as note"
        );
        assert!(s1.contains("\"startLine\": 3"));
    }

    #[test]
    fn empty_report_still_lists_every_rule() {
        let s = render(&[]);
        for r in rules::RULES {
            assert!(s.contains(&format!("\"id\": {}", json_escape(r.id))));
        }
        assert!(s.contains("\"results\": []"));
    }
}
