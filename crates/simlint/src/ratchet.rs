//! The ratchet: pre-existing diagnostic debt for ratchetable rules,
//! recorded per (rule, file) in `simlint.ratchet` at the workspace root.
//! Counts may shrink (tighten the file with `--update-ratchet`) but a
//! commit can never grow them.
//!
//! File format, one entry per line, sorted, `#` comments allowed:
//!
//! ```text
//! panic-in-lib crates/sched/src/slurm.rs 4
//! ```

use crate::diag::Diagnostic;
use crate::rules;
use std::collections::BTreeMap;

pub const RATCHET_FILE: &str = "simlint.ratchet";

/// (rule, file) → tolerated diagnostic count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Ratchet {
    pub counts: BTreeMap<(String, String), u32>,
}

/// Outcome of comparing current debt against the ratchet.
#[derive(Debug, Default)]
pub struct RatchetDelta {
    /// Keys whose current count exceeds the tolerated count — failures.
    pub over: Vec<String>,
    /// Keys whose current count is below the tolerated count — the
    /// ratchet should be tightened (kept honest by the self-check test).
    pub under: Vec<String>,
}

impl Ratchet {
    pub fn parse(text: &str) -> Ratchet {
        let mut counts = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(file), Some(n)) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let Ok(n) = n.parse::<u32>() else { continue };
            counts.insert((rule.to_string(), file.to_string()), n);
        }
        Ratchet { counts }
    }

    /// Serialize in the canonical sorted form. Fully-resolved entries
    /// (count 0) are dropped, so `--update-ratchet` never leaves stale
    /// zero-count lines behind once a file's debt is burned down.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# simlint ratchet: tolerated pre-existing diagnostics per (rule, file).\n\
             # Counts may only decrease; regenerate with `cargo run -p simlint -- --update-ratchet`.\n",
        );
        for ((rule, file), n) in &self.counts {
            if *n > 0 {
                out.push_str(&format!("{rule} {file} {n}\n"));
            }
        }
        out
    }

    /// Current debt per (rule, file) for ratchetable rules, counting
    /// only unsuppressed diagnostics.
    pub fn current(diags: &[Diagnostic]) -> Ratchet {
        let mut counts: BTreeMap<(String, String), u32> = BTreeMap::new();
        for d in diags {
            if d.suppressed {
                continue;
            }
            if rules::rule(d.rule).is_some_and(|r| r.ratchet) {
                *counts
                    .entry((d.rule.to_string(), d.file.clone()))
                    .or_default() += 1;
            }
        }
        Ratchet { counts }
    }

    /// Mark ratcheted diagnostics in place and report the delta. For each
    /// (rule, file) within budget, every diagnostic is absorbed; over
    /// budget, none are (the whole file's debt surfaces, which is what
    /// makes the developer either fix a site or justify it inline).
    pub fn apply(&self, diags: &mut [Diagnostic]) -> RatchetDelta {
        let current = Ratchet::current(diags);
        let mut delta = RatchetDelta::default();
        for (key, &cur) in &current.counts {
            let allowed = self.counts.get(key).copied().unwrap_or(0);
            if cur > allowed {
                delta
                    .over
                    .push(format!("{} {} {cur} > {allowed}", key.0, key.1));
            } else {
                if cur < allowed {
                    delta
                        .under
                        .push(format!("{} {} {cur} < {allowed}", key.0, key.1));
                }
                for d in diags.iter_mut() {
                    if !d.suppressed && d.rule == key.0 && d.file == key.1 {
                        d.ratcheted = true;
                    }
                }
            }
        }
        // Entries for files that no longer have any debt at all.
        for (key, &allowed) in &self.counts {
            if allowed > 0 && !current.counts.contains_key(key) {
                delta
                    .under
                    .push(format!("{} {} 0 < {allowed}", key.0, key.1));
            }
        }
        delta.over.sort();
        delta.under.sort();
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;
    use crate::rules::PANIC_IN_LIB;

    fn d(file: &str) -> Diagnostic {
        Diagnostic::new(PANIC_IN_LIB, file, 1, "x".into())
    }

    #[test]
    fn parse_render_round_trip() {
        let r = Ratchet::parse("# c\npanic-in-lib a.rs 2\n\npanic-in-lib b.rs 1\n");
        assert_eq!(r.counts.len(), 2);
        let r2 = Ratchet::parse(&r.render());
        assert_eq!(r, r2);
    }

    #[test]
    fn render_drops_fully_resolved_entries() {
        let r = Ratchet::parse("panic-in-lib a.rs 0\npanic-in-lib b.rs 1\n");
        let rendered = r.render();
        assert!(
            !rendered.contains("a.rs"),
            "zero-count line must be dropped"
        );
        assert!(rendered.contains("panic-in-lib b.rs 1"));
    }

    #[test]
    fn within_budget_absorbs_over_budget_surfaces() {
        let ratchet = Ratchet::parse("panic-in-lib a.rs 2\n");
        let mut diags = vec![d("a.rs"), d("a.rs")];
        let delta = ratchet.apply(&mut diags);
        assert!(delta.over.is_empty());
        assert!(diags.iter().all(|x| x.ratcheted));

        let mut diags = vec![d("a.rs"), d("a.rs"), d("a.rs")];
        let delta = ratchet.apply(&mut diags);
        assert_eq!(delta.over.len(), 1);
        assert!(diags.iter().all(|x| !x.ratcheted));
    }

    #[test]
    fn shrinking_debt_reports_under() {
        let ratchet = Ratchet::parse("panic-in-lib a.rs 2\npanic-in-lib gone.rs 3\n");
        let mut diags = vec![d("a.rs")];
        let delta = ratchet.apply(&mut diags);
        assert_eq!(delta.under.len(), 2);
        assert!(delta.over.is_empty());
    }
}
