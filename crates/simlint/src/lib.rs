//! `simlint` — workspace-wide determinism & soundness lints for the
//! Frontier simulator.
//!
//! The repro's headline guarantee — every figure and table renders
//! byte-identical whether run `--serial` or rayon-parallel — is enforced
//! dynamically by the CI `cmp` gate on one small-scale run. This crate
//! enforces the *source-level* discipline that makes the guarantee hold
//! at every scale, on every code path, including the ones a small run
//! never exercises.
//!
//! # Two analysis tiers
//!
//! **Per-file token rules** see one lexed file at a time:
//!
//! * [`rules::HASH_ITER`] — no hash-ordered containers in render paths;
//! * [`rules::WALLCLOCK`] — wall-clock reads only in `sim-core::metrics`;
//! * [`rules::UNKEYED_RNG`] — all randomness keyed & seeded;
//! * [`rules::PAR_RAW_ATOMIC`] — only commutative metric updates inside
//!   rayon closures;
//! * [`rules::PANIC_IN_LIB`] — panic budget in library crates, ratcheted
//!   downward via `simlint.ratchet`;
//! * [`rules::BARE_ALLOW`] — every suppression carries a justification;
//! * [`rules::GLOBAL_METRICS`] — no `metrics::global()` in libraries.
//!
//! **Graph rules** run after every file is parsed ([`parse`]) into a
//! workspace call graph ([`graph`]), so a violation in one crate can be
//! traced to a sink in another:
//!
//! * [`rules::HASH_ITER_REACH`] — hash-ordered iteration *reachable
//!   from* a render/snapshot sink anywhere in the workspace (subsumes
//!   the path heuristic of `hash-iter-render`);
//! * [`rules::SCOPE_DROP`] — raw rayon forks whose call graph records
//!   `metrics::active()` without routing through
//!   `Scope::{install,join,par_map}`;
//! * [`rules::FLOAT_ORDER`] — order-sensitive float reductions in
//!   parallel regions.
//!
//! The analysis is a hand-rolled token-level pass (see [`lexer`]): the
//! workspace builds offline with no proc-macro stack available, and a
//! linter that must gate CI should not depend on the code it audits —
//! or on anything else.
//!
//! Run it with `cargo run -p simlint`; suppress a justified finding with
//! `// simlint::allow(<rule>): <why this is sound>`.
//!
//! # Writing a new rule
//!
//! 1. Add an id const and a [`rules::Rule`] entry (summary, invariant,
//!    `explain` text for `--explain`, and whether pre-existing debt is
//!    tolerated via the ratchet).
//! 2. Implement the check. A per-file rule is a
//!    `fn(&SourceFile, &mut Vec<Diagnostic>)` wired into
//!    [`rules::check_file`]; it can use token text, [`source::FileKind`],
//!    `in_test_region`, and `par_ranges`. A graph rule is wired into
//!    [`rules::check_graph`] and additionally gets the [`parse::ParsedFile`]
//!    (fn defs + call sites) and the workspace [`graph::Graph`] — seed a
//!    node set, call `reachable_from`, and name the provenance node in
//!    the message so the finding is actionable.
//! 3. Keep it deterministic: `BTree*` collections only, iterate tokens
//!    in index order — the self-check runs simlint on itself.
//! 4. Add fixture tests in `tests/rules.rs` (positive, clean, and
//!    suppressed shapes), then audit the workspace: fix every real
//!    finding or justify it with `simlint::allow(<rule>): why`, so the
//!    self-check stays clean.
//! 5. Over-approximate in the flagging direction. A lint for a
//!    determinism guarantee must not miss real flows; a false positive
//!    costs one reviewed `allow` comment, a false negative costs a
//!    nondeterministic artifact nobody notices.

pub mod diag;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod ratchet;
pub mod rules;
pub mod sarif;
pub mod source;

use diag::Diagnostic;
use parse::ParsedFile;
use ratchet::{Ratchet, RatchetDelta};
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Directories under the workspace root that hold lintable sources.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Directory names never descended into: build output, lint fixtures
/// (deliberate violations), VCS internals.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git"];

/// The full outcome of linting a workspace.
pub struct Outcome {
    /// Every diagnostic, sorted by (file, line, rule), with suppression
    /// and ratchet status applied.
    pub diagnostics: Vec<Diagnostic>,
    pub ratchet_delta: RatchetDelta,
    /// Current ratchetable debt (what `--update-ratchet` would write).
    pub current_debt: Ratchet,
    /// Deterministic call-graph dump (`--graph-json`): nodes, edges,
    /// render sinks, and sink reachability.
    pub graph_json: String,
}

impl Outcome {
    /// Diagnostics that gate the build.
    pub fn failures(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_failure())
    }

    pub fn is_clean(&self) -> bool {
        self.failures().next().is_none() && self.ratchet_delta.over.is_empty()
    }
}

/// Recursively collect `.rs` files under `root`'s scan roots, returning
/// workspace-relative paths with `/` separators, sorted.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Result of analyzing a set of sources together: suppression-evaluated
/// diagnostics plus the deterministic graph dump.
pub struct Analysis {
    pub diagnostics: Vec<Diagnostic>,
    pub graph_json: String,
}

/// Lint a set of `(workspace-relative path, source)` files as one
/// workspace: per-file rules on each, then the call graph and the graph
/// rules across all of them. Inputs must be pre-sorted by path for
/// deterministic node ids (callers that read from [`collect_sources`]
/// already are).
pub fn analyze_files(inputs: &[(String, String)]) -> Analysis {
    let files: Vec<(SourceFile, ParsedFile)> = inputs
        .iter()
        .map(|(rel, src)| {
            let f = SourceFile::parse(rel, src);
            let p = parse::parse(&f);
            (f, p)
        })
        .collect();
    let g = graph::Graph::build(&files);

    let mut diags = Vec::new();
    for (f, _) in &files {
        rules::check_file(f, &mut diags);
    }
    let ga = rules::check_graph(&files, &g, &mut diags);
    rules::apply_suppressions(&files, &mut diags);
    diag::sort(&mut diags);

    Analysis {
        diagnostics: diags,
        graph_json: g.to_json(&ga.sinks, &ga.reach),
    }
}

/// Lint one source text under its workspace-relative path. This is the
/// fixture-test entry point: the path determines the file's kind and
/// which path-scoped rules apply, and the file forms a one-file
/// workspace for the graph rules.
pub fn analyze_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    analyze_files(&[(rel.to_string(), src.to_string())]).diagnostics
}

/// Lint the whole workspace at `root` against its `simlint.ratchet`
/// (missing ratchet = zero tolerated debt).
pub fn run_workspace(root: &Path) -> std::io::Result<Outcome> {
    let ratchet_text =
        std::fs::read_to_string(root.join(ratchet::RATCHET_FILE)).unwrap_or_default();
    let ratchet = Ratchet::parse(&ratchet_text);

    let mut inputs: Vec<(String, String)> = Vec::new();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path)?;
        inputs.push((rel, src));
    }
    let analysis = analyze_files(&inputs);
    let mut diags = analysis.diagnostics;

    let ratchet_delta = ratchet.apply(&mut diags);
    let current_debt = Ratchet::current(&diags);
    Ok(Outcome {
        diagnostics: diags,
        ratchet_delta,
        current_debt,
        graph_json: analysis.graph_json,
    })
}

/// The workspace root when running via `cargo run -p simlint` or in this
/// crate's tests: two levels above this crate's manifest.
pub fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}
