//! `simlint` — workspace-wide determinism & soundness lints for the
//! Frontier simulator.
//!
//! The repro's headline guarantee — every figure and table renders
//! byte-identical whether run `--serial` or rayon-parallel — is enforced
//! dynamically by the CI `cmp` gate on one small-scale run. This crate
//! enforces the *source-level* discipline that makes the guarantee hold
//! at every scale, on every code path, including the ones a small run
//! never exercises:
//!
//! * [`rules::HASH_ITER`] — no hash-ordered containers in render paths;
//! * [`rules::WALLCLOCK`] — wall-clock reads only in `sim-core::metrics`;
//! * [`rules::UNKEYED_RNG`] — all randomness keyed & seeded;
//! * [`rules::PAR_RAW_ATOMIC`] — only commutative metric updates inside
//!   rayon closures;
//! * [`rules::PANIC_IN_LIB`] — panic budget in library crates, ratcheted
//!   downward via `simlint.ratchet`;
//! * [`rules::BARE_ALLOW`] — every suppression carries a justification.
//!
//! The analysis is a hand-rolled token-level pass (see [`lexer`]): the
//! workspace builds offline with no proc-macro stack available, and a
//! linter that must gate CI should not depend on the code it audits —
//! or on anything else.
//!
//! Run it with `cargo run -p simlint`; suppress a justified finding with
//! `// simlint::allow(<rule>): <why this is sound>`.

pub mod diag;
pub mod lexer;
pub mod ratchet;
pub mod rules;
pub mod source;

use diag::Diagnostic;
use ratchet::{Ratchet, RatchetDelta};
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Directories under the workspace root that hold lintable sources.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Directory names never descended into: build output, lint fixtures
/// (deliberate violations), VCS internals.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git"];

/// The full outcome of linting a workspace.
pub struct Outcome {
    /// Every diagnostic, sorted by (file, line, rule), with suppression
    /// and ratchet status applied.
    pub diagnostics: Vec<Diagnostic>,
    pub ratchet_delta: RatchetDelta,
    /// Current ratchetable debt (what `--update-ratchet` would write).
    pub current_debt: Ratchet,
}

impl Outcome {
    /// Diagnostics that gate the build.
    pub fn failures(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_failure())
    }

    pub fn is_clean(&self) -> bool {
        self.failures().next().is_none() && self.ratchet_delta.over.is_empty()
    }
}

/// Recursively collect `.rs` files under `root`'s scan roots, returning
/// workspace-relative paths with `/` separators, sorted.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint one source text under its workspace-relative path. This is the
/// fixture-test entry point: the path determines the file's kind and
/// which path-scoped rules apply.
pub fn analyze_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    let f = SourceFile::parse(rel, src);
    let mut diags = Vec::new();
    rules::check_file(&f, &mut diags);
    rules::apply_suppressions(&f, &mut diags);
    diag::sort(&mut diags);
    diags
}

/// Lint the whole workspace at `root` against its `simlint.ratchet`
/// (missing ratchet = zero tolerated debt).
pub fn run_workspace(root: &Path) -> std::io::Result<Outcome> {
    let ratchet_text =
        std::fs::read_to_string(root.join(ratchet::RATCHET_FILE)).unwrap_or_default();
    let ratchet = Ratchet::parse(&ratchet_text);

    let mut diags = Vec::new();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path)?;
        let f = SourceFile::parse(&rel, &src);
        let mut file_diags = Vec::new();
        rules::check_file(&f, &mut file_diags);
        rules::apply_suppressions(&f, &mut file_diags);
        diags.append(&mut file_diags);
    }
    diag::sort(&mut diags);

    let ratchet_delta = ratchet.apply(&mut diags);
    let current_debt = Ratchet::current(&diags);
    Ok(Outcome {
        diagnostics: diags,
        ratchet_delta,
        current_debt,
    })
}

/// The workspace root when running via `cargo run -p simlint` or in this
/// crate's tests: two levels above this crate's manifest.
pub fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}
