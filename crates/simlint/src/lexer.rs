//! A minimal Rust lexer: just enough structure for token-level lint
//! rules. It understands the constructs that would otherwise produce
//! false positives — line/block comments (nested), string and raw-string
//! literals, byte strings, char literals vs. lifetimes — and throws
//! everything else into two buckets: identifier-like tokens (idents,
//! keywords, numbers) and single-character punctuation.
//!
//! Comments are not discarded: they carry the `// simlint::allow(...)`
//! suppression syntax, so they are returned alongside the token stream
//! with their line numbers.

/// What a token is, at the only granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier, keyword, or numeric literal.
    Ident,
    /// A single punctuation character (`.`, `:`, `(`, `!`, ...).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment (`//`, `///`, `//!`, or `/* ... */`) with its starting
/// line. `own_line` is true when nothing but whitespace precedes it on
/// that line, which is what lets a `simlint::allow` comment apply to the
/// line below it.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub own_line: bool,
}

/// Lexer output: the token stream plus every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Never fails: unterminated
/// literals simply consume to end of input, which is the right behavior
/// for a linter that must not crash on the code it audits.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // True until a non-whitespace char is seen on the current line.
    let mut at_line_start = true;

    while i < n {
        let c = chars[i];

        if c == '\n' {
            line += 1;
            at_line_start = true;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comment (also covers /// and //! doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line,
                own_line: at_line_start,
            });
            at_line_start = false;
            continue;
        }

        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let own = at_line_start;
            let mut depth = 1u32;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 1;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 1;
                }
                i += 1;
            }
            out.comments.push(Comment {
                text: chars[start..i.min(n)].iter().collect(),
                line: start_line,
                own_line: own,
            });
            at_line_start = false;
            continue;
        }

        at_line_start = false;

        // Raw strings and raw byte strings: r"..", r#".."#, br#".."#.
        if c == 'r' || c == 'b' {
            let mut j = i;
            if chars[j] == 'b' && j + 1 < n && chars[j + 1] == 'r' {
                j += 1;
            }
            if chars[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < n && chars[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && chars[k] == '"' {
                    // Consume to the matching `"` + hashes closer.
                    k += 1;
                    'raw: while k < n {
                        if chars[k] == '\n' {
                            line += 1;
                        } else if chars[k] == '"' {
                            let mut h = 0usize;
                            while k + 1 + h < n && h < hashes && chars[k + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                k += 1 + hashes;
                                break 'raw;
                            }
                        }
                        k += 1;
                    }
                    i = k;
                    continue;
                }
            }
        }

        // Ordinary string or byte string.
        if c == '"' || (c == 'b' && i + 1 < n && chars[i + 1] == '"') {
            if c == 'b' {
                i += 1;
            }
            i += 1; // opening quote
            while i < n {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            continue;
        }

        // Char literal vs. lifetime. `'a` followed by anything but a
        // closing quote is a lifetime (no token emitted; rules never
        // match on lifetimes). `'x'` or `'\n'` is a char literal.
        if c == '\'' {
            let next = chars.get(i + 1).copied().unwrap_or(' ');
            let after = chars.get(i + 2).copied().unwrap_or(' ');
            if next == '\\' {
                // Escaped char literal: skip the tick, backslash, and the
                // escaped char itself (so `'\''` does not stop at its own
                // escaped quote), then consume through the closing quote.
                i += 3;
                while i < n && chars[i] != '\'' {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 1;
            } else if after == '\'' {
                i += 3; // 'x'
            } else {
                i += 1; // lifetime tick; the ident lexes next
            }
            continue;
        }

        // Identifier / keyword / number (numbers need no distinction for
        // any rule, and lumping them keeps suffixes like `0u32` simple).
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }

        // Everything else: single-char punctuation.
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // thread_rng in a comment
            /* Instant::now in /* a nested */ block */
            let s = "thread_rng";
            let r = r#"Instant::now "quoted" "#;
            let c = 'x';
            fn real_ident() {}
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"str".to_string()));
        assert!(ids.contains(&"a".to_string()));
    }

    #[test]
    fn comments_carry_line_and_own_line() {
        let l = lex("let x = 1; // trailing\n// own line\nlet y = 2;\n");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(!l.comments[0].own_line);
        assert_eq!(l.comments[1].line, 2);
        assert!(l.comments[1].own_line);
    }

    #[test]
    fn lines_advance_through_multiline_strings() {
        let l = lex("let a = \"x\ny\";\nlet b = 1;\n");
        let b = l.tokens.iter().find(|t| t.is_ident("b"));
        assert_eq!(b.map(|t| t.line), Some(3));
    }
}
