//! Per-file analysis context: path classification, token depths,
//! `#[cfg(test)]`/`#[test]` region detection, rayon parallel-closure
//! region detection, and `simlint::allow` suppression parsing.

use crate::lexer::{self, Comment, Token};
use std::collections::{BTreeMap, BTreeSet};

/// How a file participates in the build, derived from its path. Rules
/// target kinds: e.g. the panic rule audits `Lib` only, the wallclock
/// rule skips `Bench` (benches *are* the timing harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    Lib,
    Bin,
    Test,
    Bench,
    Example,
}

/// A line-level suppression: which rules a comment allows, and whether a
/// justification was given after the rule list.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rules: Vec<String>,
    pub justified: bool,
    /// Line of the comment itself.
    pub line: u32,
    /// Whole-file allow (`simlint::allow-file(...)`).
    pub file_wide: bool,
}

/// Paren/brace nesting level *before* each token is applied.
#[derive(Debug, Clone, Copy, Default)]
pub struct Depth {
    pub paren: u32,
    pub brace: u32,
}

/// Everything the rules need to know about one source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    pub kind: FileKind,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    pub depths: Vec<Depth>,
    /// Inclusive line ranges covered by `#[test]` fns or `#[cfg(test)]`
    /// items.
    test_ranges: Vec<(u32, u32)>,
    /// Inclusive token-index ranges lexically inside a rayon parallel
    /// construct (`par_iter()` chains, `rayon::join`, ...).
    par_ranges: Vec<(usize, usize)>,
    /// Line → rules allowed on that line.
    line_allows: BTreeMap<u32, BTreeSet<String>>,
    /// Rules allowed for the whole file.
    file_allows: BTreeSet<String>,
    /// All allow comments, for the bare-allow (missing justification) rule.
    pub allows: Vec<Allow>,
}

/// Classify a workspace-relative path into its [`FileKind`].
pub fn classify(rel: &str) -> FileKind {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.contains(&"tests") {
        return FileKind::Test;
    }
    if parts.contains(&"benches") {
        return FileKind::Bench;
    }
    if parts.contains(&"examples") {
        return FileKind::Example;
    }
    if rel.ends_with("src/main.rs") || parts.windows(2).any(|w| w == ["src", "bin"]) {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// Rayon entry points that start a parallel region. A chain hanging off
/// any of these (`.map(|..| ..)`, `.for_each(|..| ..)`) runs its closures
/// concurrently, so the whole enclosing statement is marked.
const PAR_TRIGGERS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_chunks_mut",
    "par_windows",
    "par_drain",
    "par_extend",
    "par_sort",
    "par_sort_by",
    "par_sort_by_key",
    "par_sort_unstable",
];

impl SourceFile {
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        let depths = compute_depths(&lexed.tokens);
        let test_ranges = find_test_ranges(&lexed.tokens, &depths);
        let par_ranges = find_par_ranges(&lexed.tokens, &depths);
        let allows = parse_allows(&lexed.comments);

        let mut line_allows: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
        let mut file_allows: BTreeSet<String> = BTreeSet::new();
        for a in &allows {
            if a.file_wide {
                file_allows.extend(a.rules.iter().cloned());
            } else {
                // A trailing comment suppresses its own line; a comment
                // alone on a line suppresses the line below as well.
                for l in [a.line, a.line + 1] {
                    line_allows
                        .entry(l)
                        .or_default()
                        .extend(a.rules.iter().cloned());
                }
            }
        }

        SourceFile {
            rel: rel.to_string(),
            kind: classify(rel),
            tokens: lexed.tokens,
            comments: lexed.comments,
            depths,
            test_ranges,
            par_ranges,
            line_allows,
            file_allows,
            allows,
        }
    }

    /// Is `line` inside a `#[test]` fn or `#[cfg(test)]` item?
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Is token index `i` lexically inside a rayon parallel construct?
    pub fn in_par_region(&self, i: usize) -> bool {
        self.par_ranges.iter().any(|&(a, b)| a <= i && i <= b)
    }

    pub fn has_par_regions(&self) -> bool {
        !self.par_ranges.is_empty()
    }

    /// Inclusive token-index ranges of rayon parallel constructs, for
    /// rules that inspect each region as a unit (scope-drop, float-order).
    pub fn par_ranges(&self) -> &[(usize, usize)] {
        &self.par_ranges
    }

    /// Is `rule` suppressed at `line` (or file-wide)?
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.file_allows.contains(rule)
            || self
                .line_allows
                .get(&line)
                .is_some_and(|set| set.contains(rule))
    }
}

fn compute_depths(tokens: &[Token]) -> Vec<Depth> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut d = Depth::default();
    for t in tokens {
        out.push(d);
        if t.is_punct('(') {
            d.paren += 1;
        } else if t.is_punct(')') {
            d.paren = d.paren.saturating_sub(1);
        } else if t.is_punct('{') {
            d.brace += 1;
        } else if t.is_punct('}') {
            d.brace = d.brace.saturating_sub(1);
        }
    }
    out
}

/// Does the token slice of a `cfg(...)` argument enable the item under
/// test builds? True for `test` / `any(test, ..)`, false when the only
/// `test` is under `not(..)` — close enough for lint purposes.
fn cfg_args_mean_test(args: &[Token]) -> bool {
    for (i, t) in args.iter().enumerate() {
        if t.is_ident("test") || t.is_ident("doctest") {
            let negated = i >= 2 && args[i - 1].is_punct('(') && args[i - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
    }
    false
}

/// Find line ranges of items gated to test builds: `#[test]` and
/// `#[cfg(test)]` (including `any(test, ...)`) attributes, extended over
/// the attributed item's braces (or to its `;` for brace-less items).
fn find_test_ranges(tokens: &[Token], depths: &[Depth]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let n = tokens.len();
    let mut i = 0usize;
    while i < n {
        if !(tokens[i].is_punct('#') && i + 1 < n && tokens[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let attr_start = i;
        let mut j = i + 2;
        let mut bracket = 1i32;
        let mut attr: Vec<Token> = Vec::new();
        while j < n && bracket > 0 {
            if tokens[j].is_punct('[') {
                bracket += 1;
            } else if tokens[j].is_punct(']') {
                bracket -= 1;
            }
            if bracket > 0 {
                attr.push(tokens[j].clone());
            }
            j += 1;
        }
        let is_test_attr = match attr.first() {
            Some(t) if t.is_ident("test") && attr.len() == 1 => true,
            Some(t) if t.is_ident("cfg") => cfg_args_mean_test(&attr[1..]),
            _ => false,
        };
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes, then span the attributed item.
        let mut k = j;
        while k + 1 < n && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[') {
            let mut b = 1i32;
            k += 2;
            while k < n && b > 0 {
                if tokens[k].is_punct('[') {
                    b += 1;
                } else if tokens[k].is_punct(']') {
                    b -= 1;
                }
                k += 1;
            }
        }
        let item_brace = depths.get(k).map(|d| d.brace).unwrap_or(0);
        let mut end_line = tokens.get(k.min(n - 1)).map(|t| t.line).unwrap_or(0);
        while k < n {
            let t = &tokens[k];
            if t.is_punct(';') && depths[k].brace <= item_brace && depths[k].paren == 0 {
                end_line = t.line;
                break;
            }
            if t.is_punct('{') && depths[k].brace == item_brace {
                // Span to the matching close brace.
                let mut m = k + 1;
                while m < n {
                    if tokens[m].is_punct('}') && depths[m].brace == item_brace + 1 {
                        break;
                    }
                    m += 1;
                }
                end_line = tokens.get(m.min(n - 1)).map(|t| t.line).unwrap_or(end_line);
                k = m;
                break;
            }
            k += 1;
        }
        ranges.push((tokens[attr_start].line, end_line));
        i = k.max(j);
    }
    ranges
}

/// Find token ranges inside rayon parallel constructs. The region runs
/// from the trigger token to the end of the enclosing statement — a `;`
/// at no deeper nesting — or to the close of the enclosing block for
/// tail expressions. This over-approximates (the whole chained statement
/// is marked, not just closure bodies), which is the safe direction for
/// a determinism lint.
fn find_par_ranges(tokens: &[Token], depths: &[Depth]) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let n = tokens.len();
    for i in 0..n {
        let t = &tokens[i];
        let trigger = (t.kind == lexer::TokKind::Ident && PAR_TRIGGERS.contains(&t.text.as_str()))
            || ((t.is_ident("join") || t.is_ident("scope") || t.is_ident("spawn"))
                && i >= 2
                && tokens[i - 1].is_punct(':')
                && tokens[i - 2].is_punct(':')
                && i >= 3
                && tokens[i - 3].is_ident("rayon"));
        if !trigger {
            continue;
        }
        if let Some(&(_, last_end)) = ranges.last() {
            if i <= last_end {
                continue; // already inside a marked region
            }
        }
        let d0 = depths[i];
        let mut j = i + 1;
        while j < n {
            let tj = &tokens[j];
            if tj.is_punct(';') && depths[j].paren <= d0.paren && depths[j].brace <= d0.brace {
                break;
            }
            if tj.is_punct('}') && depths[j].brace <= d0.brace {
                break;
            }
            j += 1;
        }
        ranges.push((i, j.min(n.saturating_sub(1))));
    }
    ranges
}

/// Parse every `simlint::allow(rules...)` / `simlint::allow-file(rules...)`
/// comment. A justification is any non-empty text after the closing
/// paren (conventionally `: why this is sound`).
fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("simlint::allow") {
            let after = &rest[pos + "simlint::allow".len()..];
            let (file_wide, args) = if let Some(a) = after.strip_prefix("-file(") {
                (true, a)
            } else if let Some(a) = after.strip_prefix('(') {
                (false, a)
            } else {
                rest = after;
                continue;
            };
            let Some(close) = args.find(')') else {
                break;
            };
            let rules: Vec<String> = args[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let tail = args[close + 1..]
                .trim_start_matches([':', ' ', '-', '—'])
                .trim();
            if !rules.is_empty() {
                out.push(Allow {
                    rules,
                    justified: !tail.is_empty(),
                    line: c.line,
                    file_wide,
                });
            }
            rest = &args[close + 1..];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_kinds() {
        assert_eq!(classify("crates/fabric/src/solver.rs"), FileKind::Lib);
        assert_eq!(classify("crates/bench/src/bin/repro.rs"), FileKind::Bin);
        assert_eq!(classify("crates/fabric/tests/proptests.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/benches/tables.rs"), FileKind::Bench);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Example);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
    }

    #[test]
    fn cfg_test_region_spans_module() {
        let src = "fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn more() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(2));
        assert!(f.in_test_region(4));
        assert!(!f.in_test_region(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.in_test_region(2));
    }

    #[test]
    fn par_region_covers_chained_closures() {
        let src = "fn f(v: &[u64], c: &C) {\n    v.par_iter().for_each(|x| {\n        c.raw.fetch_add(*x, O);\n    });\n    c.raw.fetch_add(1, O);\n}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let in_par: Vec<bool> = (0..f.tokens.len()).map(|i| f.in_par_region(i)).collect();
        let adds: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("fetch_add"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(adds.len(), 2);
        assert!(in_par[adds[0]], "closure-body fetch_add is parallel");
        assert!(!in_par[adds[1]], "statement after the chain is serial");
    }

    #[test]
    fn allow_parses_rules_and_justification() {
        let src = "// simlint::allow(wallclock): operator-facing elapsed print\nlet t = Instant::now();\n// simlint::allow(panic-in-lib)\nx.unwrap();\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.suppressed("wallclock", 2));
        assert!(!f.suppressed("wallclock", 4));
        assert!(f.suppressed("panic-in-lib", 4));
        assert_eq!(f.allows.len(), 2);
        assert!(f.allows[0].justified);
        assert!(!f.allows[1].justified);
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let src = "//! simlint::allow-file(hash-iter-render): inserts into BTreeMap\nuse std::collections::HashMap;\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.suppressed("hash-iter-render", 2));
        assert!(f.suppressed("hash-iter-render", 999));
    }
}
