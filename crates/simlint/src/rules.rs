//! The rule registry. Every rule encodes one invariant the simulator's
//! parallel ≡ serial reproducibility guarantee rests on (see DESIGN
//! §3.8); each has fixture tests in `tests/rules.rs` proving it catches
//! its target pattern and respects suppressions.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeSet;

/// Static description of one lint rule.
pub struct Rule {
    pub id: &'static str,
    pub summary: &'static str,
    /// The invariant the rule protects, surfaced by `--list-rules`.
    pub invariant: &'static str,
    /// Ratchetable rules tolerate pre-existing debt recorded in
    /// `simlint.ratchet`; the debt may shrink but never grow.
    pub ratchet: bool,
}

pub const HASH_ITER: &str = "hash-iter-render";
pub const WALLCLOCK: &str = "wallclock";
pub const UNKEYED_RNG: &str = "unkeyed-rng";
pub const PAR_RAW_ATOMIC: &str = "par-raw-atomic";
pub const PANIC_IN_LIB: &str = "panic-in-lib";
pub const BARE_ALLOW: &str = "bare-allow";
pub const GLOBAL_METRICS: &str = "global-metrics";

pub const RULES: &[Rule] = &[
    Rule {
        id: HASH_ITER,
        summary: "no HashMap/HashSet in snapshot/render/report code paths",
        invariant: "rendered output must not depend on hash-iteration order; \
                    use BTreeMap/BTreeSet or sort before emitting",
        ratchet: false,
    },
    Rule {
        id: WALLCLOCK,
        summary: "no Instant/SystemTime outside sim-core::metrics (wallclock module)",
        invariant: "wall-clock reads are the one sanctioned nondeterminism and live \
                    in the metrics wallclock section, which determinism diffs exclude",
        ratchet: false,
    },
    Rule {
        id: UNKEYED_RNG,
        summary: "no thread_rng/from_entropy/OsRng — all randomness is keyed & seeded",
        invariant: "every random draw comes from a stream keyed by (seed, component, \
                    index), so serial and parallel schedules see identical draws",
        ratchet: false,
    },
    Rule {
        id: PAR_RAW_ATOMIC,
        summary: "no raw atomic read-modify-write inside rayon closures",
        invariant: "metric updates under parallelism go through the commutative \
                    sim-core::metrics API; raw fetch_* orderings leak the schedule",
        ratchet: false,
    },
    Rule {
        id: PANIC_IN_LIB,
        summary: "no unwrap/expect/panic! in library code outside tests",
        invariant: "library crates surface typed errors or documented-invariant \
                    expects; panics are budgeted and ratcheted downward",
        ratchet: true,
    },
    Rule {
        id: BARE_ALLOW,
        summary: "every simlint::allow carries a justification",
        invariant: "suppressions are audit records; an allow without a reason \
                    cannot be reviewed",
        ratchet: false,
    },
    Rule {
        id: GLOBAL_METRICS,
        summary: "no metrics::global() in library crates — use active()/shared()",
        invariant: "library instrumentation resolves through the scope stack \
                    (metrics::active) or the shared-resource escape hatch \
                    (metrics::shared); binding the global registry directly \
                    would bypass scoped attribution and break per-variant and \
                    per-section snapshots",
        ratchet: false,
    },
];

pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Files whose output feeds the byte-compared artifacts (tables, traces,
/// metric snapshots, the repro binary). Hash-ordered containers here are
/// exactly where iteration order could leak into rendered bytes.
fn is_render_path(rel: &str) -> bool {
    const RENDER_FILES: &[&str] = &[
        "crates/sim-core/src/table.rs",
        "crates/sim-core/src/trace.rs",
        "crates/sim-core/src/json.rs",
        "crates/sim-core/src/metrics.rs",
        "crates/sim-core/src/stats.rs",
        "crates/sim-core/src/hist.rs",
    ];
    RENDER_FILES.contains(&rel)
        || rel.starts_with("crates/bench/src/")
        || rel.starts_with("crates/campaign/src/")
}

/// The one module allowed to read the wall clock: the metrics registry's
/// wallclock family, whose snapshot section determinism diffs exclude.
fn is_wallclock_module(rel: &str) -> bool {
    rel == "crates/sim-core/src/metrics.rs"
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

const RAW_RMW: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "getrandom",
];

/// Run every rule over one parsed file, appending raw (not yet
/// suppression-evaluated) diagnostics.
pub fn check_file(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    check_hash_iter(f, out);
    check_wallclock(f, out);
    check_unkeyed_rng(f, out);
    check_par_raw_atomic(f, out);
    check_panic_in_lib(f, out);
    check_bare_allow(f, out);
    check_global_metrics(f, out);
}

/// Apply suppressions: a diagnostic on an allowed line (or in a file
/// with a file-wide allow for its rule) is marked suppressed, not
/// dropped — the JSON report still shows it.
pub fn apply_suppressions(f: &SourceFile, diags: &mut [Diagnostic]) {
    for d in diags.iter_mut() {
        // The bare-allow rule polices the suppression mechanism itself
        // and therefore cannot be silenced by it.
        if d.rule != BARE_ALLOW && f.suppressed(d.rule, d.line) {
            d.suppressed = true;
        }
    }
}

fn prod_code(f: &SourceFile, kind_ok: &[FileKind], line: u32) -> bool {
    kind_ok.contains(&f.kind) && !f.in_test_region(line)
}

/// R1: hash-ordered containers in render/report paths.
fn check_hash_iter(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_render_path(&f.rel) {
        return;
    }
    let toks = &f.tokens;
    // Names declared with a hash-container type in this file:
    // `x: HashMap<..>`, `x = HashMap::new()`, `type X = HashMap<..>`.
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();
    let mut flagged_lines: BTreeSet<u32> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        if !prod_code(f, &[FileKind::Lib, FileKind::Bin], t.line) {
            continue;
        }
        if i >= 2 && toks[i].kind == TokKind::Ident {
            let prev = &toks[i - 1];
            let name = &toks[i - 2];
            if (prev.is_punct(':') || prev.is_punct('=')) && name.kind == TokKind::Ident {
                hash_names.insert(name.text.as_str());
            }
        }
        if flagged_lines.insert(t.line) {
            out.push(Diagnostic::new(
                HASH_ITER,
                &f.rel,
                t.line,
                format!(
                    "hash-ordered `{}` in a render/report path; use BTreeMap/BTreeSet \
                     or sort before emitting",
                    t.text
                ),
            ));
        }
    }
    // Iteration over a declared hash name: `name.iter()`, `for .. in &name`.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !hash_names.contains(t.text.as_str()) {
            continue;
        }
        if !prod_code(f, &[FileKind::Lib, FileKind::Bin], t.line) {
            continue;
        }
        let method_iter = i + 2 < toks.len()
            && toks[i + 1].is_punct('.')
            && toks[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 2].text.as_str());
        let mut j = i;
        while j > 0 && (toks[j - 1].is_punct('&') || toks[j - 1].is_ident("mut")) {
            j -= 1;
        }
        let for_iter = j > 0 && toks[j - 1].is_ident("in");
        if (method_iter || for_iter) && !flagged_lines.contains(&t.line) {
            flagged_lines.insert(t.line);
            out.push(Diagnostic::new(
                HASH_ITER,
                &f.rel,
                t.line,
                format!(
                    "iteration over hash-ordered `{}` in a render/report path; \
                     order can leak into emitted bytes",
                    t.text
                ),
            ));
        }
    }
}

/// R2: wall-clock reads outside the metrics wallclock module.
fn check_wallclock(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if is_wallclock_module(&f.rel) {
        return;
    }
    for t in &f.tokens {
        if !(t.is_ident("Instant") || t.is_ident("SystemTime")) {
            continue;
        }
        if !prod_code(f, &[FileKind::Lib, FileKind::Bin], t.line) {
            continue;
        }
        out.push(Diagnostic::new(
            WALLCLOCK,
            &f.rel,
            t.line,
            format!(
                "`{}` outside sim-core::metrics; route timing through the \
                 wallclock metric family (its snapshot section is excluded \
                 from determinism diffs)",
                t.text
            ),
        ));
    }
}

/// R3: entropy-derived RNG anywhere — tests included, since a test that
/// draws from process entropy cannot pin determinism either.
fn check_unkeyed_rng(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for t in &f.tokens {
        if t.kind == TokKind::Ident && ENTROPY_IDENTS.contains(&t.text.as_str()) {
            out.push(Diagnostic::new(
                UNKEYED_RNG,
                &f.rel,
                t.line,
                format!(
                    "`{}` draws from process entropy; all RNG must be a keyed, \
                     seeded stream (sim-core::rng::StreamRng)",
                    t.text
                ),
            ));
        }
    }
}

/// R4: raw atomic read-modify-write lexically inside a rayon construct.
fn check_par_raw_atomic(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.has_par_regions() {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || !RAW_RMW.contains(&t.text.as_str()) {
            continue;
        }
        if i == 0 || !f.tokens[i - 1].is_punct('.') || !f.in_par_region(i) {
            continue;
        }
        if !prod_code(f, &[FileKind::Lib, FileKind::Bin], t.line) {
            continue;
        }
        out.push(Diagnostic::new(
            PAR_RAW_ATOMIC,
            &f.rel,
            t.line,
            format!(
                "raw `{}` inside a rayon closure; update metrics through the \
                 commutative sim-core::metrics API instead",
                t.text
            ),
        ));
    }
}

/// R5: unwrap/expect/panic! in library code outside tests. Captured
/// `&mut` accumulation in rayon closures is rustc's job; this rule and
/// the ratchet handle the panic budget.
fn check_panic_in_lib(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => {
                i > 0
                    && toks[i - 1].is_punct('.')
                    && i + 1 < toks.len()
                    && toks[i + 1].is_punct('(')
            }
            "panic" => i + 1 < toks.len() && toks[i + 1].is_punct('!'),
            _ => false,
        };
        if !hit || !prod_code(f, &[FileKind::Lib], t.line) {
            continue;
        }
        out.push(Diagnostic::new(
            PANIC_IN_LIB,
            &f.rel,
            t.line,
            format!(
                "`{}` in library code; return a typed error, or document the \
                 invariant and suppress with simlint::allow({PANIC_IN_LIB}): <why>",
                t.text
            ),
        ));
    }
}

/// R7: `metrics::global()` bound directly in library code. Binaries own
/// the process and may snapshot/reset the global registry; sim-core is
/// the scope machinery itself; everyone else records through
/// `metrics::active()` so a caller-installed scope can claim the update
/// (or `metrics::shared()` when scope attribution would be a race).
fn check_global_metrics(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.rel.starts_with("crates/sim-core/") {
        return;
    }
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if i < 3 || !t.is_ident("global") {
            continue;
        }
        if !(toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("metrics"))
        {
            continue;
        }
        if !prod_code(f, &[FileKind::Lib], t.line) {
            continue;
        }
        out.push(Diagnostic::new(
            GLOBAL_METRICS,
            &f.rel,
            t.line,
            "`metrics::global()` in library code bypasses scoped attribution; \
             record through `metrics::active()` (scope-aware) or \
             `metrics::shared()` (shared-resource telemetry)"
                .to_string(),
        ));
    }
}

/// Meta-rule: every allow must say why.
fn check_bare_allow(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for a in &f.allows {
        if !a.justified {
            out.push(Diagnostic::new(
                BARE_ALLOW,
                &f.rel,
                a.line,
                format!(
                    "simlint::allow({}) without a justification; append `: <why \
                     this is sound>`",
                    a.rules.join(", ")
                ),
            ));
        }
    }
}
