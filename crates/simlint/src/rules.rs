//! The rule registry. Every rule encodes one invariant the simulator's
//! parallel ≡ serial reproducibility guarantee rests on (see DESIGN
//! §3.8); each has fixture tests in `tests/rules.rs` proving it catches
//! its target pattern and respects suppressions.
//!
//! Rules come in two tiers: per-file token rules (r1–r6, r10) that see
//! one [`SourceFile`] at a time, and graph rules (r7–r9) that run over
//! the workspace call graph ([`crate::graph`]) after every file is
//! parsed, so a violation in one crate can be traced to a sink in
//! another.

use crate::diag::Diagnostic;
use crate::graph::{Graph, NodeId};
use crate::lexer::TokKind;
use crate::parse::{self, ParsedFile};
use crate::source::{FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Static description of one lint rule.
pub struct Rule {
    pub id: &'static str,
    pub summary: &'static str,
    /// The invariant the rule protects, surfaced by `--list-rules`.
    pub invariant: &'static str,
    /// Long-form rationale and fix guidance, surfaced by `--explain`.
    pub explain: &'static str,
    /// Ratchetable rules tolerate pre-existing debt recorded in
    /// `simlint.ratchet`; the debt may shrink but never grow.
    pub ratchet: bool,
}

pub const HASH_ITER: &str = "hash-iter-render";
pub const WALLCLOCK: &str = "wallclock";
pub const UNKEYED_RNG: &str = "unkeyed-rng";
pub const PAR_RAW_ATOMIC: &str = "par-raw-atomic";
pub const PANIC_IN_LIB: &str = "panic-in-lib";
pub const BARE_ALLOW: &str = "bare-allow";
pub const HASH_ITER_REACH: &str = "hash-iter-reach";
pub const SCOPE_DROP: &str = "scope-drop";
pub const FLOAT_ORDER: &str = "float-order";
pub const GLOBAL_METRICS: &str = "global-metrics";

pub const RULES: &[Rule] = &[
    Rule {
        id: HASH_ITER,
        summary: "no HashMap/HashSet in snapshot/render/report code paths",
        invariant: "rendered output must not depend on hash-iteration order; \
                    use BTreeMap/BTreeSet or sort before emitting",
        explain: "Files on the render path (tables, traces, JSON snapshots, the \
                  bench/campaign emitters) turn in-memory state into the bytes the \
                  CI cmp gates compare. HashMap/HashSet iteration order depends on \
                  RandomState and insertion history, so any hash-ordered container \
                  declared or iterated in these files can leak a different byte \
                  stream per run. Fix: use BTreeMap/BTreeSet, or collect-and-sort \
                  before emitting. This is the per-file rule; hash-iter-reach \
                  extends it across the call graph.",
        ratchet: false,
    },
    Rule {
        id: WALLCLOCK,
        summary: "no Instant/SystemTime outside sim-core::metrics (wallclock module)",
        invariant: "wall-clock reads are the one sanctioned nondeterminism and live \
                    in the metrics wallclock section, which determinism diffs exclude",
        explain: "Simulated time comes from the event calendar, never the host \
                  clock. The one legitimate wall-clock consumer is the metrics \
                  wallclock family in sim-core, whose snapshot section the \
                  determinism diff deliberately excludes. An Instant::now() \
                  anywhere else either influences simulation behavior (broken) or \
                  is timing telemetry in the wrong place (move it into the \
                  wallclock metric family).",
        ratchet: false,
    },
    Rule {
        id: UNKEYED_RNG,
        summary: "no thread_rng/from_entropy/OsRng — all randomness is keyed & seeded",
        invariant: "every random draw comes from a stream keyed by (seed, component, \
                    index), so serial and parallel schedules see identical draws",
        explain: "Randomness is reproducible only when every draw is a pure \
                  function of (seed, component, index) — sim-core::rng::StreamRng. \
                  thread_rng/from_entropy/OsRng pull from process entropy, so even \
                  a test using them cannot pin behavior. The rule therefore flags \
                  entropy sources in test code too.",
        ratchet: false,
    },
    Rule {
        id: PAR_RAW_ATOMIC,
        summary: "no raw atomic read-modify-write inside rayon closures",
        invariant: "metric updates under parallelism go through the commutative \
                    sim-core::metrics API; raw fetch_* orderings leak the schedule",
        explain: "A fetch_add inside a rayon closure is only safe when the final \
                  value is schedule-independent, and raw atomics give no such \
                  guarantee for anything beyond a commutative counter — and even \
                  then the intermediate values observed by other threads depend on \
                  the schedule. The sim-core::metrics counters are the audited \
                  commutative path; use them, or restructure the parallel loop to \
                  write disjoint slices.",
        ratchet: false,
    },
    Rule {
        id: PANIC_IN_LIB,
        summary: "no unwrap/expect/panic! in library code outside tests",
        invariant: "library crates surface typed errors or documented-invariant \
                    expects; panics are budgeted and ratcheted downward",
        explain: "Library crates return typed errors; a panic in a rayon worker \
                  aborts the pool mid-simulation and loses the deterministic \
                  drain. Pre-existing panic debt is frozen per (rule, file) in \
                  simlint.ratchet — it may shrink (run --update-ratchet after \
                  fixing) but a commit can never grow it. A deliberate invariant \
                  panic stays allowed with simlint::allow(panic-in-lib): <why>.",
        ratchet: true,
    },
    Rule {
        id: BARE_ALLOW,
        summary: "every simlint::allow carries a justification",
        invariant: "suppressions are audit records; an allow without a reason \
                    cannot be reviewed",
        explain: "simlint::allow comments are the audit trail for every tolerated \
                  violation; one without a `: why this is sound` tail is a \
                  suppression nobody can review. This meta-rule cannot itself be \
                  suppressed.",
        ratchet: false,
    },
    Rule {
        id: HASH_ITER_REACH,
        summary: "no hash-ordered iteration reachable from a render/snapshot sink",
        invariant: "any function a render sink can reach must not iterate \
                    hash-ordered containers; order leaks transitively into \
                    emitted bytes",
        explain: "Graph rule. Sinks are seeded at every function in a render-path \
                  file plus every function whose name marks it as an emitter \
                  (render*/snapshot*/emit*/*_json/jsonl/report*), then reachability \
                  is propagated over the workspace call graph. A HashMap/HashSet \
                  iteration inside any reachable function — even three crates away \
                  from the sink — is flagged, with the sink it serves named in the \
                  message. This subsumes hash-iter-render's path heuristic: a \
                  helper crate can no longer leak hash order into a snapshot just \
                  because its file name looks innocent. Resolution is name-based \
                  and over-approximate (a false edge can only add a finding, never \
                  hide one); a keyed-lookup-only map that is never iterated is \
                  always clean. An existing allow(hash-iter-render) also covers \
                  this rule at the same site.",
        ratchet: true,
    },
    Rule {
        id: SCOPE_DROP,
        summary: "raw rayon entry points must route through metrics::Scope",
        invariant: "every fork that can record metrics::active() goes through \
                    Scope::{install,join,par_map}, so scoped attribution survives \
                    work stealing",
        explain: "Graph rule. MetricsScope is thread-local: a raw par_iter/join/\
                  spawn/scope hands closures to stolen workers that see no \
                  installed scope, so metrics::active() silently resolves to \
                  nothing and per-variant/per-section snapshots lose those \
                  updates. The rule finds each raw rayon region in library code, \
                  resolves the calls it makes, and walks the call graph; if any \
                  reachable function records metrics::active(), the fork must go \
                  through sim_core::metrics::Scope::{install,join,par_map} (which \
                  re-install the scope on the workers). Regions that provably \
                  record nothing scope-sensitive are clean as-is.",
        ratchet: true,
    },
    Rule {
        id: FLOAT_ORDER,
        summary: "no order-sensitive float reductions in parallel contexts",
        invariant: "parallel float folds must be associative-commutative (min/max) \
                    or restructured to a fixed reduction order; float addition is \
                    not associative",
        explain: "IEEE-754 addition and multiplication are not associative, so \
                  par_iter().sum::<f64>(), a rayon reduce/fold over floats, or a \
                  partial_cmp-based comparator inside a parallel region can \
                  produce different bits per schedule — the one nondeterminism \
                  class a small-scale runtime cmp gate is most likely to miss. \
                  min/max reducers are exempt (associative and commutative). Fix: \
                  collect and reduce serially in index order, use integer/fixed- \
                  point accumulation, or switch comparators to total_cmp.",
        ratchet: true,
    },
    Rule {
        id: GLOBAL_METRICS,
        summary: "no metrics::global() in library crates — use active()/shared()",
        invariant: "library instrumentation resolves through the scope stack \
                    (metrics::active) or the shared-resource escape hatch \
                    (metrics::shared); binding the global registry directly \
                    would bypass scoped attribution and break per-variant and \
                    per-section snapshots",
        explain: "Binaries own the process-level registry (snapshot/reset at \
                  exit) and sim-core is the scope machinery itself; every other \
                  crate records through metrics::active() so a caller-installed \
                  scope claims the update, or metrics::shared() when attribution \
                  to one scope would be a race. metrics::global() in a library \
                  hard-binds the process registry and silently defeats both.",
        ratchet: false,
    },
];

pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Files whose output feeds the byte-compared artifacts (tables, traces,
/// metric snapshots, the repro binary). Hash-ordered containers here are
/// exactly where iteration order could leak into rendered bytes. Every
/// function in these files seeds the hash-iter-reach sink set.
pub fn is_render_path(rel: &str) -> bool {
    const RENDER_FILES: &[&str] = &[
        "crates/sim-core/src/table.rs",
        "crates/sim-core/src/trace.rs",
        "crates/sim-core/src/json.rs",
        "crates/sim-core/src/metrics.rs",
        "crates/sim-core/src/stats.rs",
        "crates/sim-core/src/hist.rs",
    ];
    RENDER_FILES.contains(&rel)
        || rel.starts_with("crates/bench/src/")
        || rel.starts_with("crates/campaign/src/")
}

/// The one module allowed to read the wall clock: the metrics registry's
/// wallclock family, whose snapshot section determinism diffs exclude.
fn is_wallclock_module(rel: &str) -> bool {
    rel == "crates/sim-core/src/metrics.rs"
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

const RAW_RMW: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "getrandom",
];

/// Run every per-file rule over one parsed file, appending raw (not yet
/// suppression-evaluated) diagnostics.
pub fn check_file(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    check_hash_iter(f, out);
    check_wallclock(f, out);
    check_unkeyed_rng(f, out);
    check_par_raw_atomic(f, out);
    check_panic_in_lib(f, out);
    check_bare_allow(f, out);
    check_global_metrics(f, out);
}

/// Sink seeds and reachability computed by the graph rules, kept for the
/// `--graph-json` dump.
pub struct GraphAnalysis {
    /// Render/emit sink nodes (r7 seeds).
    pub sinks: BTreeSet<NodeId>,
    /// Node → the sink it was first reached from.
    pub reach: BTreeMap<NodeId, NodeId>,
}

/// Run every graph rule over the parsed workspace, appending raw
/// diagnostics, and return the sink/reachability sets.
pub fn check_graph(
    files: &[(SourceFile, ParsedFile)],
    graph: &Graph,
    out: &mut Vec<Diagnostic>,
) -> GraphAnalysis {
    let sinks = render_sinks(files, graph);
    let reach = graph.reachable_from(&sinks);
    let recorders = active_recorders(files, graph);
    for (f, p) in files {
        check_hash_iter_reach(f, p, graph, &reach, out);
        check_scope_drop(f, p, graph, &recorders, out);
        check_float_order(f, out);
    }
    GraphAnalysis { sinks, reach }
}

/// Does this fn name mark an output-producing function? These seed the
/// r7 sink set in files the path heuristic does not cover.
fn is_sink_name(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    n.contains("render")
        || n.contains("snapshot")
        || n.contains("emit")
        || n.contains("jsonl")
        || n.ends_with("_json")
        || n.starts_with("report")
}

/// Seed the r7 sink set: every production fn (and the module-level
/// pseudo-node) in a render-path file, plus every production fn whose
/// name marks it as an emitter, anywhere in the workspace.
pub fn render_sinks(files: &[(SourceFile, ParsedFile)], graph: &Graph) -> BTreeSet<NodeId> {
    let mut sinks = BTreeSet::new();
    for (f, p) in files {
        if !matches!(f.kind, FileKind::Lib | FileKind::Bin) {
            continue;
        }
        let render_file = is_render_path(&f.rel);
        if render_file {
            if let Some(top) = graph.toplevel_node(&f.rel) {
                sinks.insert(top);
            }
        }
        for (idx, d) in p.fns.iter().enumerate() {
            if f.in_test_region(d.line) {
                continue;
            }
            if render_file || is_sink_name(&d.name) {
                if let Some(id) = graph.fn_node(&f.rel, idx) {
                    sinks.insert(id);
                }
            }
        }
    }
    sinks
}

/// Sink provenance per token of `f`: for each token, the sink that first
/// reaches the innermost enclosing fn (tokens outside every fn body
/// belong to the module-level pseudo-node). Inner fns overwrite outer
/// ones, so a never-called nested fn does not inherit its parent's
/// reachability.
fn sink_mask(
    f: &SourceFile,
    p: &ParsedFile,
    graph: &Graph,
    reach: &BTreeMap<NodeId, NodeId>,
) -> Vec<Option<NodeId>> {
    let top_via = graph
        .toplevel_node(&f.rel)
        .and_then(|id| reach.get(&id).copied());
    let mut mask = vec![top_via; f.tokens.len()];
    let mut order: Vec<(usize, usize, usize)> = Vec::new(); // (span, fn idx, a..=b)
    for (idx, d) in p.fns.iter().enumerate() {
        if let Some((a, b)) = d.body {
            order.push((b - a, idx, a));
        }
    }
    // Widest first so narrower (inner) bodies overwrite.
    order.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
    for (span, idx, a) in order {
        let via = graph
            .fn_node(&f.rel, idx)
            .and_then(|id| reach.get(&id).copied());
        for m in mask.iter_mut().skip(a).take(span + 1) {
            *m = via;
        }
    }
    mask
}

/// R7: hash-ordered containers reachable from a render sink. In
/// render-path files every hash-container mention on a reachable token
/// is flagged (exactly subsuming r1); elsewhere only *iteration* over a
/// hash-typed name is — a keyed lookup leaks no order.
fn check_hash_iter_reach(
    f: &SourceFile,
    p: &ParsedFile,
    graph: &Graph,
    reach: &BTreeMap<NodeId, NodeId>,
    out: &mut Vec<Diagnostic>,
) {
    if !matches!(f.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    let toks = &f.tokens;
    let has_hash = toks
        .iter()
        .any(|t| t.is_ident("HashMap") || t.is_ident("HashSet"));
    if !has_hash {
        return;
    }
    let mask = sink_mask(f, p, graph, reach);
    let sink_of = |id: NodeId| {
        let n = &graph.nodes[id];
        format!("`{}` ({}:{})", n.qual, n.file, n.line)
    };
    let render_file = is_render_path(&f.rel);
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();
    let mut flagged_lines: BTreeSet<u32> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        if !prod_code(f, &[FileKind::Lib, FileKind::Bin], t.line) {
            continue;
        }
        if i >= 2 {
            let prev = &toks[i - 1];
            let name = &toks[i - 2];
            if (prev.is_punct(':') || prev.is_punct('=')) && name.kind == TokKind::Ident {
                hash_names.insert(name.text.as_str());
            }
        }
        if render_file {
            if let Some(via) = mask[i] {
                if flagged_lines.insert(t.line) {
                    out.push(Diagnostic::new(
                        HASH_ITER_REACH,
                        &f.rel,
                        t.line,
                        format!(
                            "hash-ordered `{}` reachable from render sink {}; use \
                             BTreeMap/BTreeSet or sort before emitting",
                            t.text,
                            sink_of(via)
                        ),
                    ));
                }
            }
        }
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !hash_names.contains(t.text.as_str()) {
            continue;
        }
        if !prod_code(f, &[FileKind::Lib, FileKind::Bin], t.line) {
            continue;
        }
        let Some(via) = mask[i] else { continue };
        let method_iter = i + 2 < toks.len()
            && toks[i + 1].is_punct('.')
            && toks[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 2].text.as_str());
        let mut j = i;
        while j > 0 && (toks[j - 1].is_punct('&') || toks[j - 1].is_ident("mut")) {
            j -= 1;
        }
        let for_iter = j > 0 && toks[j - 1].is_ident("in");
        if (method_iter || for_iter) && flagged_lines.insert(t.line) {
            out.push(Diagnostic::new(
                HASH_ITER_REACH,
                &f.rel,
                t.line,
                format!(
                    "iteration over hash-ordered `{}` is reachable from render \
                     sink {}; order leaks transitively into emitted bytes",
                    t.text,
                    sink_of(via)
                ),
            ));
        }
    }
}

/// Token `i` is the `active` of a `metrics::active` path.
fn is_metrics_active_at(f: &SourceFile, i: usize) -> bool {
    i >= 3
        && f.tokens[i].is_ident("active")
        && f.tokens[i - 1].is_punct(':')
        && f.tokens[i - 2].is_punct(':')
        && f.tokens[i - 3].is_ident("metrics")
}

/// Every node whose body records through `metrics::active()` — the
/// functions whose metric updates vanish on a scope-less stolen worker.
pub fn active_recorders(files: &[(SourceFile, ParsedFile)], graph: &Graph) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    for (f, p) in files {
        for i in 0..f.tokens.len() {
            if !is_metrics_active_at(f, i) || f.in_test_region(f.tokens[i].line) {
                continue;
            }
            let id = match parse::innermost_fn(&p.fns, i) {
                Some(idx) => graph.fn_node(&f.rel, idx),
                None => graph.toplevel_node(&f.rel),
            };
            if let Some(id) = id {
                out.insert(id);
            }
        }
    }
    out
}

/// R8: a raw rayon region in library code whose call graph reaches a
/// `metrics::active()` recorder, without routing through
/// `Scope::{install,join,par_map}`. sim-core is exempt: it *is* the
/// scope machinery.
fn check_scope_drop(
    f: &SourceFile,
    p: &ParsedFile,
    graph: &Graph,
    recorders: &BTreeSet<NodeId>,
    out: &mut Vec<Diagnostic>,
) {
    if f.kind != FileKind::Lib || f.rel.starts_with("crates/sim-core/") {
        return;
    }
    for &(a, b) in f.par_ranges() {
        let t0 = &f.tokens[a];
        if !prod_code(f, &[FileKind::Lib], t0.line) {
            continue;
        }
        // A region that mentions Scope routing (install/join/par_map on a
        // Scope, or an installed scope handle) re-installs the scope on
        // its workers.
        let routed = f.tokens[a..=b]
            .iter()
            .any(|t| t.is_ident("Scope") || t.is_ident("install") || t.is_ident("par_map"));
        if routed {
            continue;
        }
        let inline = (a..=b).any(|i| is_metrics_active_at(f, i));
        let reached = if inline {
            None
        } else {
            let mut seeds: BTreeSet<NodeId> = BTreeSet::new();
            for c in &p.calls {
                if c.tok >= a && c.tok <= b {
                    seeds.extend(graph.resolve(&c.callee, c.qualifier.as_deref()));
                }
            }
            let reach = graph.reachable_from(&seeds);
            match reach.keys().find(|id| recorders.contains(*id)) {
                Some(&id) => Some(id),
                None => continue, // nothing scope-sensitive is reachable
            }
        };
        let detail = match reached {
            None => "records `metrics::active()` directly in the fork".to_string(),
            Some(id) => {
                let n = &graph.nodes[id];
                format!(
                    "reaches `{}` ({}:{}), which records `metrics::active()`",
                    n.qual, n.file, n.line
                )
            }
        };
        out.push(Diagnostic::new(
            SCOPE_DROP,
            &f.rel,
            t0.line,
            format!(
                "raw rayon `{}` {detail}; stolen workers see no installed \
                 MetricsScope — route through sim_core::metrics::Scope::\
                 {{install,join,par_map}}",
                t0.text
            ),
        ));
    }
}

/// Is this token a float-type name (`f64`/`f32`)?
fn is_float_ty(t: &crate::lexer::Token) -> bool {
    t.is_ident("f64") || t.is_ident("f32")
}

/// Do the tokens of a reduce/fold argument list mention floats? Catches
/// type names, suffixed literals (`0.0f64`), and bare float literals
/// (`0.0` lexes as ident `0`, punct `.`, ident `0`).
fn args_mention_float(args: &[crate::lexer::Token]) -> bool {
    for (i, t) in args.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "f64" || t.text == "f32" || t.text.ends_with("f64") || t.text.ends_with("f32")
        {
            return true;
        }
        let digits = t.text.chars().all(|c| c.is_ascii_digit());
        if digits
            && i + 2 < args.len()
            && args[i + 1].is_punct('.')
            && args[i + 2]
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit())
        {
            return true;
        }
    }
    false
}

/// R9: order-sensitive float reductions lexically inside a rayon
/// parallel region. `min`/`max` reducers are associative-commutative and
/// exempt; everything else (float sum/product turbofish, float
/// reduce/fold, partial_cmp comparators) depends on reduction order.
fn check_float_order(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    let n = toks.len();
    for &(a, b) in f.par_ranges() {
        for i in a..=b.min(n.saturating_sub(1)) {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            if !prod_code(f, &[FileKind::Lib, FileKind::Bin], t.line) {
                continue;
            }
            let is_method = i > 0 && toks[i - 1].is_punct('.');
            match t.text.as_str() {
                "sum" | "product" if is_method => {
                    let float_turbofish = i + 4 < n
                        && toks[i + 1].is_punct(':')
                        && toks[i + 2].is_punct(':')
                        && toks[i + 3].is_punct('<')
                        && is_float_ty(&toks[i + 4]);
                    if float_turbofish {
                        out.push(Diagnostic::new(
                            FLOAT_ORDER,
                            &f.rel,
                            t.line,
                            format!(
                                "parallel float `.{}::<{}>()`: float addition is not \
                                 associative, so the result depends on the rayon \
                                 schedule; reduce serially in index order",
                                t.text,
                                toks[i + 4].text
                            ),
                        ));
                    }
                }
                "reduce" | "fold" if is_method && i + 1 < n && toks[i + 1].is_punct('(') => {
                    // Balanced argument span of the call.
                    let open = i + 1;
                    let d0 = f.depths[open];
                    let mut close = open + 1;
                    while close < n {
                        if toks[close].is_punct(')') && f.depths[close].paren == d0.paren + 1 {
                            break;
                        }
                        close += 1;
                    }
                    let args = &toks[open + 1..close.min(n)];
                    let assoc = args
                        .iter()
                        .any(|x| x.is_ident("min") || x.is_ident("max") || x.is_ident("total_cmp"));
                    if args_mention_float(args) && !assoc {
                        out.push(Diagnostic::new(
                            FLOAT_ORDER,
                            &f.rel,
                            t.line,
                            format!(
                                "parallel float `.{}(..)`: reduction order depends on \
                                 the rayon schedule; use a min/max reducer or reduce \
                                 serially in index order",
                                t.text
                            ),
                        ));
                    }
                }
                "partial_cmp" => {
                    out.push(Diagnostic::new(
                        FLOAT_ORDER,
                        &f.rel,
                        t.line,
                        "`partial_cmp` inside a parallel region: NaN handling and \
                         comparator order can vary with the schedule; use \
                         `total_cmp` for floats"
                            .to_string(),
                    ));
                }
                _ => {}
            }
        }
    }
}

/// Apply suppressions: a diagnostic on an allowed line (or in a file
/// with a file-wide allow for its rule) is marked suppressed, not
/// dropped — the JSON report still shows it. An allow for
/// `hash-iter-render` also covers `hash-iter-reach` at the same site:
/// the graph rule subsumes the path rule, and a justification written
/// for one is a justification for both.
pub fn apply_suppressions(files: &[(SourceFile, ParsedFile)], diags: &mut [Diagnostic]) {
    let by_rel: BTreeMap<&str, &SourceFile> =
        files.iter().map(|(f, _)| (f.rel.as_str(), f)).collect();
    for d in diags.iter_mut() {
        // The bare-allow rule polices the suppression mechanism itself
        // and therefore cannot be silenced by it.
        if d.rule == BARE_ALLOW {
            continue;
        }
        let Some(f) = by_rel.get(d.file.as_str()) else {
            continue;
        };
        if f.suppressed(d.rule, d.line)
            || (d.rule == HASH_ITER_REACH && f.suppressed(HASH_ITER, d.line))
        {
            d.suppressed = true;
        }
    }
}

fn prod_code(f: &SourceFile, kind_ok: &[FileKind], line: u32) -> bool {
    kind_ok.contains(&f.kind) && !f.in_test_region(line)
}

/// R1: hash-ordered containers in render/report paths.
fn check_hash_iter(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_render_path(&f.rel) {
        return;
    }
    let toks = &f.tokens;
    // Names declared with a hash-container type in this file:
    // `x: HashMap<..>`, `x = HashMap::new()`, `type X = HashMap<..>`.
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();
    let mut flagged_lines: BTreeSet<u32> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        if !prod_code(f, &[FileKind::Lib, FileKind::Bin], t.line) {
            continue;
        }
        if i >= 2 && toks[i].kind == TokKind::Ident {
            let prev = &toks[i - 1];
            let name = &toks[i - 2];
            if (prev.is_punct(':') || prev.is_punct('=')) && name.kind == TokKind::Ident {
                hash_names.insert(name.text.as_str());
            }
        }
        if flagged_lines.insert(t.line) {
            out.push(Diagnostic::new(
                HASH_ITER,
                &f.rel,
                t.line,
                format!(
                    "hash-ordered `{}` in a render/report path; use BTreeMap/BTreeSet \
                     or sort before emitting",
                    t.text
                ),
            ));
        }
    }
    // Iteration over a declared hash name: `name.iter()`, `for .. in &name`.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !hash_names.contains(t.text.as_str()) {
            continue;
        }
        if !prod_code(f, &[FileKind::Lib, FileKind::Bin], t.line) {
            continue;
        }
        let method_iter = i + 2 < toks.len()
            && toks[i + 1].is_punct('.')
            && toks[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 2].text.as_str());
        let mut j = i;
        while j > 0 && (toks[j - 1].is_punct('&') || toks[j - 1].is_ident("mut")) {
            j -= 1;
        }
        let for_iter = j > 0 && toks[j - 1].is_ident("in");
        if (method_iter || for_iter) && !flagged_lines.contains(&t.line) {
            flagged_lines.insert(t.line);
            out.push(Diagnostic::new(
                HASH_ITER,
                &f.rel,
                t.line,
                format!(
                    "iteration over hash-ordered `{}` in a render/report path; \
                     order can leak into emitted bytes",
                    t.text
                ),
            ));
        }
    }
}

/// R2: wall-clock reads outside the metrics wallclock module.
fn check_wallclock(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if is_wallclock_module(&f.rel) {
        return;
    }
    for t in &f.tokens {
        if !(t.is_ident("Instant") || t.is_ident("SystemTime")) {
            continue;
        }
        if !prod_code(f, &[FileKind::Lib, FileKind::Bin], t.line) {
            continue;
        }
        out.push(Diagnostic::new(
            WALLCLOCK,
            &f.rel,
            t.line,
            format!(
                "`{}` outside sim-core::metrics; route timing through the \
                 wallclock metric family (its snapshot section is excluded \
                 from determinism diffs)",
                t.text
            ),
        ));
    }
}

/// R3: entropy-derived RNG anywhere — tests included, since a test that
/// draws from process entropy cannot pin determinism either.
fn check_unkeyed_rng(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for t in &f.tokens {
        if t.kind == TokKind::Ident && ENTROPY_IDENTS.contains(&t.text.as_str()) {
            out.push(Diagnostic::new(
                UNKEYED_RNG,
                &f.rel,
                t.line,
                format!(
                    "`{}` draws from process entropy; all RNG must be a keyed, \
                     seeded stream (sim-core::rng::StreamRng)",
                    t.text
                ),
            ));
        }
    }
}

/// R4: raw atomic read-modify-write lexically inside a rayon construct.
fn check_par_raw_atomic(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.has_par_regions() {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || !RAW_RMW.contains(&t.text.as_str()) {
            continue;
        }
        if i == 0 || !f.tokens[i - 1].is_punct('.') || !f.in_par_region(i) {
            continue;
        }
        if !prod_code(f, &[FileKind::Lib, FileKind::Bin], t.line) {
            continue;
        }
        out.push(Diagnostic::new(
            PAR_RAW_ATOMIC,
            &f.rel,
            t.line,
            format!(
                "raw `{}` inside a rayon closure; update metrics through the \
                 commutative sim-core::metrics API instead",
                t.text
            ),
        ));
    }
}

/// R5: unwrap/expect/panic! in library code outside tests. Captured
/// `&mut` accumulation in rayon closures is rustc's job; this rule and
/// the ratchet handle the panic budget.
fn check_panic_in_lib(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => {
                i > 0
                    && toks[i - 1].is_punct('.')
                    && i + 1 < toks.len()
                    && toks[i + 1].is_punct('(')
            }
            "panic" => i + 1 < toks.len() && toks[i + 1].is_punct('!'),
            _ => false,
        };
        if !hit || !prod_code(f, &[FileKind::Lib], t.line) {
            continue;
        }
        out.push(Diagnostic::new(
            PANIC_IN_LIB,
            &f.rel,
            t.line,
            format!(
                "`{}` in library code; return a typed error, or document the \
                 invariant and suppress with simlint::allow({PANIC_IN_LIB}): <why>",
                t.text
            ),
        ));
    }
}

/// R10: `metrics::global()` bound directly in library code. Binaries own
/// the process and may snapshot/reset the global registry; sim-core is
/// the scope machinery itself; everyone else records through
/// `metrics::active()` so a caller-installed scope can claim the update
/// (or `metrics::shared()` when scope attribution would be a race).
fn check_global_metrics(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.rel.starts_with("crates/sim-core/") {
        return;
    }
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if i < 3 || !t.is_ident("global") {
            continue;
        }
        if !(toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("metrics"))
        {
            continue;
        }
        if !prod_code(f, &[FileKind::Lib], t.line) {
            continue;
        }
        out.push(Diagnostic::new(
            GLOBAL_METRICS,
            &f.rel,
            t.line,
            "`metrics::global()` in library code bypasses scoped attribution; \
             record through `metrics::active()` (scope-aware) or \
             `metrics::shared()` (shared-resource telemetry)"
                .to_string(),
        ));
    }
}

/// Meta-rule: every allow must say why.
fn check_bare_allow(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for a in &f.allows {
        if !a.justified {
            out.push(Diagnostic::new(
                BARE_ALLOW,
                &f.rel,
                a.line,
                format!(
                    "simlint::allow({}) without a justification; append `: <why \
                     this is sound>`",
                    a.rules.join(", ")
                ),
            ));
        }
    }
}
