//! `cargo run -p simlint` — lint the workspace for determinism and
//! soundness violations. Exit 0 when clean (suppressed + ratcheted debt
//! tolerated), 1 on any gating diagnostic or ratchet growth, 2 on usage
//! or I/O errors.

// A linter CLI reports to stdout/stderr by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use simlint::{diag, ratchet, rules};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: simlint [--root DIR] [--json FILE] [--update-ratchet] [--list-rules]\n\n\
         Workspace-wide determinism & soundness lints (see DESIGN.md §3.8).\n\n\
         options:\n  \
         --root DIR        workspace root (default: this workspace)\n  \
         --json FILE       write the full diagnostic report as JSON\n  \
         --update-ratchet  rewrite simlint.ratchet with the current debt\n  \
         --list-rules      print every rule and the invariant it protects"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut update_ratchet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage(),
            },
            "--json" => match args.next() {
                Some(f) => json_out = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--update-ratchet" => update_ratchet = true,
            "--list-rules" => {
                for r in rules::RULES {
                    println!("{:<16} {}", r.id, r.summary);
                    println!("{:<16}   invariant: {}", "", r.invariant);
                    if r.ratchet {
                        println!("{:<16}   (ratcheted via {})", "", ratchet::RATCHET_FILE);
                    }
                }
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let root = root.unwrap_or_else(simlint::default_root);
    let outcome = match simlint::run_workspace(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("simlint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if update_ratchet {
        let path = root.join(ratchet::RATCHET_FILE);
        if let Err(e) = std::fs::write(&path, outcome.current_debt.render()) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "simlint: wrote {} ({} entries)",
            path.display(),
            outcome.current_debt.counts.len()
        );
    }

    if let Some(path) = &json_out {
        let json = diag::render_json(
            &outcome.diagnostics,
            &outcome.ratchet_delta.over,
            &outcome.ratchet_delta.under,
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    print!("{}", diag::render_human(&outcome.diagnostics));
    for over in &outcome.ratchet_delta.over {
        println!("ratchet exceeded: {over}");
    }
    for under in &outcome.ratchet_delta.under {
        println!("ratchet is stale (debt shrank — run --update-ratchet): {under}");
    }

    let total = outcome.diagnostics.len();
    let failing = outcome.failures().count();
    let suppressed = outcome.diagnostics.iter().filter(|d| d.suppressed).count();
    let ratcheted = outcome.diagnostics.iter().filter(|d| d.ratcheted).count();
    println!(
        "simlint: {total} diagnostics — {failing} failing, {suppressed} suppressed, \
         {ratcheted} ratcheted"
    );

    if update_ratchet || outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
