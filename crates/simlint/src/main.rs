//! `cargo run -p simlint` — lint the workspace for determinism and
//! soundness violations. Exit 0 when clean (suppressed + ratcheted debt
//! tolerated), 1 on any gating diagnostic or ratchet growth, 2 on usage
//! or I/O errors.

// A linter CLI reports to stdout/stderr by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use simlint::{diag, ratchet, rules, sarif};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: simlint [--root DIR] [--json FILE] [--sarif FILE] [--graph-json FILE]\n\
         \x20              [--update-ratchet] [--list-rules] [--explain RULE]\n\
         \x20              [--github-annotations]\n\n\
         Workspace-wide determinism & soundness lints (see DESIGN.md §3.8).\n\n\
         options:\n  \
         --root DIR            workspace root (default: this workspace)\n  \
         --json FILE           write the full diagnostic report as JSON\n  \
         --sarif FILE          write the report as SARIF 2.1.0 (CI annotations)\n  \
         --graph-json FILE     write the workspace call graph (deterministic)\n  \
         --update-ratchet      rewrite simlint.ratchet with the current debt\n  \
         --list-rules          print every rule and the invariant it protects\n  \
         --explain RULE        print the long-form rationale for one rule\n  \
         --github-annotations  emit ::error workflow commands for failures"
    );
    ExitCode::from(2)
}

fn explain(rule_id: &str) -> ExitCode {
    match rules::rule(rule_id) {
        Some(r) => {
            println!("{} — {}", r.id, r.summary);
            println!("\ninvariant: {}", r.invariant);
            println!("\n{}", r.explain);
            if r.ratchet {
                println!(
                    "\nPre-existing debt for this rule is frozen per (rule, file) in \
                     {}; it may shrink but never grow.",
                    ratchet::RATCHET_FILE
                );
            }
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "simlint: unknown rule `{rule_id}`; known rules: {}",
                rules::RULES
                    .iter()
                    .map(|r| r.id)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut sarif_out: Option<PathBuf> = None;
    let mut graph_out: Option<PathBuf> = None;
    let mut update_ratchet = false;
    let mut github_annotations = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage(),
            },
            "--json" => match args.next() {
                Some(f) => json_out = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--sarif" => match args.next() {
                Some(f) => sarif_out = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--graph-json" => match args.next() {
                Some(f) => graph_out = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--update-ratchet" => update_ratchet = true,
            "--github-annotations" => github_annotations = true,
            "--explain" => match args.next() {
                Some(r) => return explain(&r),
                None => return usage(),
            },
            "--list-rules" => {
                for r in rules::RULES {
                    println!("{:<16} {}", r.id, r.summary);
                    println!("{:<16}   invariant: {}", "", r.invariant);
                    if r.ratchet {
                        println!("{:<16}   (ratcheted via {})", "", ratchet::RATCHET_FILE);
                    }
                }
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let root = root.unwrap_or_else(simlint::default_root);
    let outcome = match simlint::run_workspace(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("simlint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if update_ratchet {
        let path = root.join(ratchet::RATCHET_FILE);
        if let Err(e) = std::fs::write(&path, outcome.current_debt.render()) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "simlint: wrote {} ({} entries)",
            path.display(),
            outcome.current_debt.counts.len()
        );
    }

    if let Some(path) = &json_out {
        let json = diag::render_json(
            &outcome.diagnostics,
            &outcome.ratchet_delta.over,
            &outcome.ratchet_delta.under,
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &sarif_out {
        if let Err(e) = std::fs::write(path, sarif::render(&outcome.diagnostics)) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &graph_out {
        if let Err(e) = std::fs::write(path, &outcome.graph_json) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if github_annotations {
        for d in outcome.failures() {
            // GitHub workflow commands strip newlines; messages are one line.
            println!(
                "::error file={},line={},title=simlint {}::{}",
                d.file, d.line, d.rule, d.message
            );
        }
    }

    print!("{}", diag::render_human(&outcome.diagnostics));
    for over in &outcome.ratchet_delta.over {
        println!("ratchet exceeded: {over}");
    }
    for under in &outcome.ratchet_delta.under {
        println!("ratchet is stale (debt shrank — run --update-ratchet): {under}");
    }

    let total = outcome.diagnostics.len();
    let failing = outcome.failures().count();
    let suppressed = outcome.diagnostics.iter().filter(|d| d.suppressed).count();
    let ratcheted = outcome.diagnostics.iter().filter(|d| d.ratcheted).count();
    println!(
        "simlint: {total} diagnostics — {failing} failing, {suppressed} suppressed, \
         {ratcheted} ratcheted"
    );

    if update_ratchet || outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
