//! A lightweight item parser on top of [`crate::lexer`]: extracts the
//! per-file structure the workspace call graph needs — `fn` definitions
//! (with their enclosing `impl` type for method resolution), the token
//! span of each body, and every call site with its syntactic shape
//! (free `f(...)`, path `Type::f(...)` / `module::f(...)`, or method
//! `.f(...)`).
//!
//! Still zero dependencies and deliberately *not* a full Rust parser:
//! the graph rules only need "which functions exist" and "which names
//! does each one invoke", and over-approximate name-based resolution is
//! the safe direction for a determinism lint. Everything here is
//! `BTree`-ordered or index-ordered — simlint obeys its own
//! hash-order rule.

use crate::lexer::{TokKind, Token};
use crate::source::{Depth, SourceFile};

/// One `fn` definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Simple name (`solve`).
    pub name: String,
    /// `impl` type when the fn is a method (`Solver` for
    /// `impl Solver { fn solve … }` and `impl Trait for Solver { … }`).
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inclusive token-index span of the body, braces included.
    /// `None` for body-less declarations (trait method signatures).
    pub body: Option<(usize, usize)>,
}

impl FnDef {
    /// `Type::name` for methods, `name` for free functions.
    pub fn qual(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One call site, attributed to the innermost enclosing fn.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Name being invoked.
    pub callee: String,
    /// Last path segment before `::` for path calls (`Scope` in
    /// `Scope::current()`, `mpigraph` in `mpigraph::run(...)`).
    pub qualifier: Option<String>,
    /// `.callee(...)` method-call syntax.
    pub method: bool,
    pub line: u32,
    /// Token index of the callee ident.
    pub tok: usize,
    /// Index into [`ParsedFile::fns`], or `None` for module-level code.
    pub in_fn: Option<usize>,
}

/// Parse result for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnDef>,
    pub calls: Vec<CallSite>,
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "fn", "let",
    "in", "move", "ref", "mut", "pub", "use", "mod", "impl", "where", "unsafe", "async", "await",
    "dyn", "type", "const", "static", "struct", "enum", "trait", "as", "crate", "super",
];

/// Parse one lexed file into fn items and call sites.
pub fn parse(f: &SourceFile) -> ParsedFile {
    let toks = &f.tokens;
    let depths = &f.depths;
    let n = toks.len();
    let mut out = ParsedFile::default();

    // Pass 1: fn definitions, with the enclosing `impl` type tracked via
    // a brace-depth stack.
    let mut impl_stack: Vec<(u32, Option<String>)> = Vec::new(); // (open depth, type)
    let mut i = 0usize;
    while i < n {
        let t = &toks[i];
        if t.is_punct('}') {
            if let Some(&(d, _)) = impl_stack.last() {
                // Depth *before* the matching close brace is open depth + 1.
                if depths[i].brace == d + 1 {
                    impl_stack.pop();
                }
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") {
            if let Some((ty, open)) = impl_type(toks, i) {
                impl_stack.push((depths[open].brace, ty));
                i = open + 1;
                continue;
            }
        }
        // Trait blocks scope their methods too, so a default method (or a
        // signature) resolves as `Trait::name`.
        if t.is_ident("trait") && i + 1 < n && toks[i + 1].kind == TokKind::Ident {
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut open = None;
            while j < n {
                let tj = &toks[j];
                if tj.is_punct('<') {
                    angle += 1;
                } else if tj.is_punct('>') {
                    angle -= 1;
                } else if tj.is_punct('{') && angle <= 0 {
                    open = Some(j);
                    break;
                } else if tj.is_punct(';') && angle <= 0 {
                    break;
                }
                j += 1;
            }
            if let Some(open) = open {
                impl_stack.push((depths[open].brace, Some(toks[i + 1].text.clone())));
                i = open + 1;
                continue;
            }
        }
        if t.is_ident("fn") && i + 1 < n && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let body = fn_body_span(toks, depths, i);
            out.fns.push(FnDef {
                name,
                impl_type: impl_stack.last().and_then(|(_, ty)| ty.clone()),
                line: t.line,
                body,
            });
        }
        i += 1;
    }

    // Pass 2: call sites, attributed to the innermost fn whose body span
    // contains the callee token.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || i + 1 >= n
            || !toks[i + 1].is_punct('(')
            || NON_CALL_KEYWORDS.contains(&t.text.as_str())
        {
            continue;
        }
        // `fn name(` is a definition, not a call.
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        let method = i > 0 && toks[i - 1].is_punct('.');
        let qualifier = if i >= 3 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
            (toks[i - 3].kind == TokKind::Ident).then(|| toks[i - 3].text.clone())
        } else {
            None
        };
        out.calls.push(CallSite {
            callee: t.text.clone(),
            qualifier,
            method,
            line: t.line,
            tok: i,
            in_fn: innermost_fn(&out.fns, i),
        });
    }

    out
}

/// Index of the innermost fn whose body contains token `tok`.
pub fn innermost_fn(fns: &[FnDef], tok: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    let mut best_span = usize::MAX;
    for (idx, f) in fns.iter().enumerate() {
        if let Some((a, b)) = f.body {
            if a <= tok && tok <= b && b - a < best_span {
                best = Some(idx);
                best_span = b - a;
            }
        }
    }
    best
}

/// The `impl` header's type name and the index of its opening `{`.
/// `impl<T> Solver<T> { … }` → `Solver`; `impl Trait for Solver { … }` →
/// `Solver`; `impl Trait for &mut Foo` → `Foo`. Returns `None` when no
/// body brace is found (e.g. a macro fragment).
fn impl_type(toks: &[Token], at: usize) -> Option<(Option<String>, usize)> {
    let n = toks.len();
    let mut j = at + 1;
    let mut angle = 0i32;
    let mut after_for: Option<String> = None;
    let mut first_ident: Option<String> = None;
    let mut saw_for = false;
    while j < n {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('{') && angle <= 0 {
            let ty = if saw_for { after_for } else { first_ident };
            return Some((ty, j));
        } else if t.is_punct(';') && angle <= 0 {
            return None; // `impl Trait for Foo;` — not real Rust, bail
        } else if t.is_ident("for") && angle <= 0 {
            saw_for = true;
        } else if t.is_ident("where") && angle <= 0 {
            // The type is fully named before `where`; stop collecting.
            while j < n && !toks[j].is_punct('{') {
                j += 1;
            }
            continue;
        } else if t.kind == TokKind::Ident && angle <= 0 {
            if saw_for {
                // Last ident of the path after `for` wins (`fmt::Display
                // for campaign::Track` → `Track`).
                after_for = Some(t.text.clone());
            } else if first_ident.is_none() {
                first_ident = Some(t.text.clone());
            } else {
                // Trait path continues (`impl fmt::Display`): keep the
                // last segment so inherent impls read `Display`; it is
                // overwritten by the `for` clause when one appears.
                first_ident = Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Token span of the body of the fn whose `fn` keyword is at `at`.
fn fn_body_span(toks: &[Token], depths: &[Depth], at: usize) -> Option<(usize, usize)> {
    let n = toks.len();
    let d0 = depths[at];
    let mut j = at + 1;
    while j < n {
        let t = &toks[j];
        if t.is_punct(';') && depths[j].brace == d0.brace && depths[j].paren == d0.paren {
            return None; // body-less declaration
        }
        if t.is_punct('{') && depths[j].brace == d0.brace {
            // Span to the matching close brace.
            let mut m = j + 1;
            while m < n {
                if toks[m].is_punct('}') && depths[m].brace == d0.brace + 1 {
                    return Some((j, m));
                }
                m += 1;
            }
            return Some((j, n - 1));
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn parsed(src: &str) -> (SourceFile, ParsedFile) {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let p = parse(&f);
        (f, p)
    }

    #[test]
    fn free_fns_and_methods_are_extracted() {
        let (_, p) = parsed(
            "fn free() {}\n\
             impl Solver { fn step(&mut self) {} }\n\
             impl Display for Row { fn fmt(&self) {} }\n\
             trait T { fn sig(&self); }\n",
        );
        let quals: Vec<String> = p.fns.iter().map(|f| f.qual()).collect();
        assert_eq!(quals, vec!["free", "Solver::step", "Row::fmt", "T::sig"]);
        assert!(p.fns[0].body.is_some());
        assert!(p.fns[3].body.is_none(), "trait signature has no body");
    }

    #[test]
    fn call_sites_carry_shape_and_owner() {
        let (_, p) = parsed(
            "fn a() { helper(); Scope::current(); x.method(); }\n\
             fn helper() {}\n\
             const C: u32 = seed();\n",
        );
        let shapes: Vec<(String, Option<String>, bool, Option<usize>)> = p
            .calls
            .iter()
            .map(|c| (c.callee.clone(), c.qualifier.clone(), c.method, c.in_fn))
            .collect();
        assert_eq!(
            shapes,
            vec![
                ("helper".into(), None, false, Some(0)),
                ("current".into(), Some("Scope".into()), false, Some(0)),
                ("method".into(), None, true, Some(0)),
                ("seed".into(), None, false, None),
            ]
        );
    }

    #[test]
    fn nested_fns_attribute_to_the_innermost() {
        let (_, p) = parsed("fn outer() { fn inner() { leaf(); } inner(); }\n");
        let leaf = p.calls.iter().find(|c| c.callee == "leaf").unwrap();
        assert_eq!(p.fns[leaf.in_fn.unwrap()].name, "inner");
        let inner_call = p.calls.iter().find(|c| c.callee == "inner").unwrap();
        assert_eq!(p.fns[inner_call.in_fn.unwrap()].name, "outer");
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let (_, p) = parsed("fn a() { if (x) {} vec![1]; println!(\"x\"); match (y) {} }\n");
        assert!(p.calls.is_empty(), "{:?}", p.calls);
    }

    #[test]
    fn generic_impl_headers_resolve_their_type() {
        let (_, p) = parsed(
            "impl<'a, T: Iterator<Item = u32>> Sweep<'a, T> { fn go(&self) {} }\n\
             impl<T> From<T> for Wrapper<T> where T: Clone { fn from(t: T) -> Self { Self(t) } }\n",
        );
        let quals: Vec<String> = p.fns.iter().map(|f| f.qual()).collect();
        assert_eq!(quals, vec!["Sweep::go", "Wrapper::from"]);
    }
}
