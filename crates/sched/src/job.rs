//! Jobs and job lifecycle.

use frontier_sim_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Scheduler-assigned job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    Pending,
    Running,
    Completed,
}

/// A batch job: a node-count request plus a walltime estimate. Frontier
/// schedules nodes exclusively — one job per node — "which simplifies
/// security requirements and node cleanup procedures".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Job {
    pub id: JobId,
    pub nodes: usize,
    pub walltime: SimTime,
    pub state: JobState,
    /// Nodes assigned while running.
    pub allocation: Vec<usize>,
    /// VNI assigned to the job's step for network isolation.
    pub vni: Option<u32>,
    /// Scheduled completion instant while running.
    pub end_time: Option<SimTime>,
}

impl Job {
    pub fn new(id: JobId, nodes: usize, walltime: SimTime) -> Self {
        assert!(nodes >= 1, "job must request at least one node");
        Job {
            id,
            nodes,
            walltime,
            state: JobState::Pending,
            allocation: Vec::new(),
            vni: None,
            end_time: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_job_is_pending() {
        let j = Job::new(JobId(1), 128, SimTime::from_secs(3600));
        assert_eq!(j.state, JobState::Pending);
        assert!(j.allocation.is_empty());
        assert!(j.vni.is_none());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_job_rejected() {
        Job::new(JobId(1), 0, SimTime::from_secs(1));
    }
}
