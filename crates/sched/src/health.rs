//! Node-health model (§3.4.2's *checknode*).
//!
//! "At boot and between every job, Slurm runs a checknode script that
//! verifies the health of every compute node." Nodes found unhealthy are
//! drained and excluded from scheduling until repaired.

use serde::{Deserialize, Serialize};

/// Health state of one compute node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// Passed checknode; schedulable.
    Healthy,
    /// Failed checknode; excluded until repair.
    Drained,
}

/// Health registry over the machine's nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeHealth {
    states: Vec<HealthState>,
}

impl NodeHealth {
    /// All nodes healthy.
    pub fn new(nodes: usize) -> Self {
        NodeHealth {
            states: vec![HealthState::Healthy; nodes],
        }
    }

    pub fn len(&self) -> usize {
        self.states.len()
    }

    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    pub fn state(&self, node: usize) -> HealthState {
        self.states[node]
    }

    /// checknode failure: drain the node.
    pub fn drain(&mut self, node: usize) {
        self.states[node] = HealthState::Drained;
    }

    /// Repair completed: node returns to service.
    pub fn repair(&mut self, node: usize) {
        self.states[node] = HealthState::Healthy;
    }

    /// True if checknode would admit the node for a new job.
    pub fn schedulable(&self, node: usize) -> bool {
        self.states[node] == HealthState::Healthy
    }

    pub fn healthy_count(&self) -> usize {
        self.states
            .iter()
            .filter(|&&s| s == HealthState::Healthy)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_healthy_at_start() {
        let h = NodeHealth::new(16);
        assert_eq!(h.healthy_count(), 16);
        assert!(h.schedulable(3));
    }

    #[test]
    fn drain_and_repair_cycle() {
        let mut h = NodeHealth::new(4);
        h.drain(2);
        assert!(!h.schedulable(2));
        assert_eq!(h.state(2), HealthState::Drained);
        assert_eq!(h.healthy_count(), 3);
        h.repair(2);
        assert!(h.schedulable(2));
        assert_eq!(h.healthy_count(), 4);
    }

    #[test]
    #[should_panic]
    fn out_of_range_node_panics() {
        let h = NodeHealth::new(2);
        h.state(5);
    }
}
