//! Topology-aware placement on the dragonfly (§3.4.2).
//!
//! Two strategies, applied by node-count threshold exactly as the paper
//! describes: *pack* small jobs into as few groups as possible (minimizing
//! global hops), *spread* large jobs evenly over as many groups as possible
//! (maximizing the global connections available to minimal routing).

use frontier_fabric::dragonfly::Dragonfly;
use frontier_sim_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Fill groups sequentially (small jobs: minimize global hops).
    Pack,
    /// Round-robin nodes across all groups (large jobs: maximize global
    /// connections).
    Spread,
    /// Frontier's automatic policy: pack jobs that fit in one group,
    /// spread the rest.
    TopologyAware,
}

/// Select `count` nodes from `free` (sorted node ids) for a job.
///
/// Returns `None` if not enough free nodes exist.
pub fn allocate(
    df: &Dragonfly,
    free: &BTreeSet<usize>,
    count: usize,
    policy: PlacementPolicy,
) -> Option<Vec<usize>> {
    if free.len() < count {
        return None;
    }
    let npg = df.params().nodes_per_group();
    let policy = match policy {
        PlacementPolicy::TopologyAware => {
            if count <= npg {
                PlacementPolicy::Pack
            } else {
                PlacementPolicy::Spread
            }
        }
        p => p,
    };
    match policy {
        PlacementPolicy::Pack => {
            // Prefer the groups with the most free nodes; fill each fully
            // before moving on, so the allocation spans as few groups as
            // possible.
            let groups = df.params().groups;
            let mut per_group: Vec<Vec<usize>> = vec![Vec::new(); groups];
            for &n in free {
                per_group[n / npg].push(n);
            }
            let mut order: Vec<usize> = (0..groups).collect();
            order.sort_by_key(|&g| std::cmp::Reverse(per_group[g].len()));
            let mut alloc = Vec::with_capacity(count);
            for g in order {
                for &n in &per_group[g] {
                    if alloc.len() == count {
                        break;
                    }
                    alloc.push(n);
                }
                if alloc.len() == count {
                    break;
                }
            }
            alloc.sort_unstable();
            Some(alloc)
        }
        PlacementPolicy::Spread => {
            // Round-robin over groups: repeatedly take one free node from
            // each group with availability.
            let groups = df.params().groups;
            let mut per_group: Vec<std::collections::VecDeque<usize>> =
                vec![Default::default(); groups];
            for &n in free {
                per_group[n / npg].push_back(n);
            }
            let mut alloc = Vec::with_capacity(count);
            while alloc.len() < count {
                let mut took = false;
                for q in per_group.iter_mut() {
                    if alloc.len() == count {
                        break;
                    }
                    if let Some(n) = q.pop_front() {
                        alloc.push(n);
                        took = true;
                    }
                }
                assert!(took, "free-node accounting is inconsistent");
            }
            alloc.sort_unstable();
            Some(alloc)
        }
        PlacementPolicy::TopologyAware => unreachable!("resolved above"),
    }
}

/// Network-facing quality metrics of an allocation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlacementMetrics {
    /// Distinct dragonfly groups spanned.
    pub groups_spanned: usize,
    /// Aggregate pipe bandwidth directly usable by minimal routing between
    /// the job's groups.
    pub minimal_global_bandwidth: Bandwidth,
    /// Fraction of node pairs within one group (communication with zero
    /// global hops).
    pub intra_group_pair_fraction: f64,
}

/// Compute placement metrics for an allocation.
pub fn placement_metrics(df: &Dragonfly, allocation: &[usize]) -> PlacementMetrics {
    assert!(!allocation.is_empty());
    let npg = df.params().nodes_per_group();
    let mut group_counts = std::collections::BTreeMap::<usize, usize>::new();
    for &n in allocation {
        *group_counts.entry(n / npg).or_insert(0) += 1;
    }
    let k = group_counts.len();
    let pipe = df.params().pipe_capacity();
    // Minimal routing between the job's k groups can use the k*(k-1) pipes
    // among them.
    let minimal_global_bandwidth = pipe * (k * k.saturating_sub(1)) as f64;

    let total = allocation.len() as f64;
    let total_pairs = total * (total - 1.0);
    let intra_pairs: f64 = group_counts
        .values()
        .map(|&c| (c as f64) * (c as f64 - 1.0))
        .sum();
    PlacementMetrics {
        groups_spanned: k,
        minimal_global_bandwidth,
        intra_group_pair_fraction: if total_pairs > 0.0 {
            intra_pairs / total_pairs
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontier_fabric::dragonfly::DragonflyParams;

    fn df() -> Dragonfly {
        // 8 groups x 8 switches x 4 eps, 4 NICs/node -> 8 nodes/group.
        Dragonfly::build(DragonflyParams::scaled(8, 8, 4))
    }

    fn all_free(df: &Dragonfly) -> BTreeSet<usize> {
        (0..df.params().total_nodes()).collect()
    }

    #[test]
    fn pack_fits_small_job_in_one_group() {
        let df = df();
        let free = all_free(&df);
        let a = allocate(&df, &free, 6, PlacementPolicy::Pack).unwrap();
        let m = placement_metrics(&df, &a);
        assert_eq!(m.groups_spanned, 1);
        assert_eq!(m.intra_group_pair_fraction, 1.0);
    }

    #[test]
    fn spread_uses_all_groups() {
        let df = df();
        let free = all_free(&df);
        let a = allocate(&df, &free, 16, PlacementPolicy::Spread).unwrap();
        let m = placement_metrics(&df, &a);
        assert_eq!(m.groups_spanned, 8);
    }

    #[test]
    fn spread_has_more_global_bandwidth_than_pack() {
        let df = df();
        let free = all_free(&df);
        let packed = allocate(&df, &free, 16, PlacementPolicy::Pack).unwrap();
        let spread = allocate(&df, &free, 16, PlacementPolicy::Spread).unwrap();
        let mp = placement_metrics(&df, &packed);
        let ms = placement_metrics(&df, &spread);
        assert!(
            ms.minimal_global_bandwidth > mp.minimal_global_bandwidth,
            "spread {} <= pack {}",
            ms.minimal_global_bandwidth,
            mp.minimal_global_bandwidth
        );
        assert!(ms.intra_group_pair_fraction < mp.intra_group_pair_fraction);
    }

    #[test]
    fn topology_aware_switches_on_group_size() {
        let df = df();
        let free = all_free(&df);
        // 8 nodes/group: a 8-node job packs, a 9-node job spreads.
        let small = allocate(&df, &free, 8, PlacementPolicy::TopologyAware).unwrap();
        let large = allocate(&df, &free, 9, PlacementPolicy::TopologyAware).unwrap();
        assert_eq!(placement_metrics(&df, &small).groups_spanned, 1);
        assert_eq!(placement_metrics(&df, &large).groups_spanned, 8);
    }

    #[test]
    fn allocation_fails_when_insufficient() {
        let df = df();
        let free: BTreeSet<usize> = (0..4).collect();
        assert!(allocate(&df, &free, 5, PlacementPolicy::Pack).is_none());
    }

    #[test]
    fn pack_prefers_emptier_job_fragmentation() {
        let df = df();
        // Groups 0 and 1 partially used; group 2 fully free.
        let mut free = all_free(&df);
        for n in 0..6 {
            free.remove(&n); // group 0 has 2 free
        }
        for n in 8..12 {
            free.remove(&n); // group 1 has 4 free
        }
        let a = allocate(&df, &free, 8, PlacementPolicy::Pack).unwrap();
        let m = placement_metrics(&df, &a);
        // Fits entirely in one fully-free group.
        assert_eq!(m.groups_spanned, 1);
    }

    #[test]
    fn allocations_contain_only_free_nodes() {
        let df = df();
        let mut free = all_free(&df);
        free.remove(&3);
        free.remove(&17);
        for policy in [PlacementPolicy::Pack, PlacementPolicy::Spread] {
            let a = allocate(&df, &free, 20, policy).unwrap();
            for n in &a {
                assert!(free.contains(n), "{policy:?} allocated busy node {n}");
            }
            // No duplicates.
            let set: BTreeSet<usize> = a.iter().copied().collect();
            assert_eq!(set.len(), a.len());
        }
    }
}
