//! The Slurm-like scheduler loop (§3.4.2).
//!
//! FIFO with exclusive nodes: a job runs when enough *healthy, free* nodes
//! exist; placement is topology-aware; every started jobstep receives a
//! unique VNI; completion returns the nodes through a checknode pass (which
//! may drain them).

use crate::health::NodeHealth;
use crate::job::{Job, JobId, JobState};
use crate::placement::{allocate, PlacementPolicy};
use crate::vni::VniAllocator;
use frontier_fabric::dragonfly::Dragonfly;
use frontier_sim_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Events driving the scheduler through the DES.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedEvent {
    /// A running job's walltime expired.
    JobEnd(JobId),
}

/// The scheduler state machine.
pub struct Scheduler {
    df: Dragonfly,
    policy: PlacementPolicy,
    /// EASY backfill: when the FIFO head is blocked, later jobs may start
    /// if they cannot delay the head's reservation.
    backfill: bool,
    free: BTreeSet<usize>,
    health: NodeHealth,
    vnis: VniAllocator,
    queue: VecDeque<JobId>,
    jobs: BTreeMap<JobId, Job>,
    next_id: u64,
    completed: Vec<JobId>,
}

impl Scheduler {
    pub fn new(df: Dragonfly, policy: PlacementPolicy) -> Self {
        let nodes = df.params().total_nodes();
        Scheduler {
            df,
            policy,
            backfill: false,
            free: (0..nodes).collect(),
            health: NodeHealth::new(nodes),
            vnis: VniAllocator::slingshot(),
            queue: VecDeque::new(),
            jobs: BTreeMap::new(),
            next_id: 1,
            completed: Vec::new(),
        }
    }

    /// Enable EASY backfill.
    pub fn with_backfill(mut self) -> Self {
        self.backfill = true;
        self
    }

    pub fn dragonfly(&self) -> &Dragonfly {
        &self.df
    }

    pub fn health_mut(&mut self) -> &mut NodeHealth {
        &mut self.health
    }

    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[&id]
    }

    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    pub fn running(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count()
    }

    pub fn completed(&self) -> &[JobId] {
        &self.completed
    }

    pub fn free_nodes(&self) -> usize {
        self.free.len()
    }

    /// Submit a job; returns its id.
    pub fn submit(&mut self, nodes: usize, walltime: SimTime) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(id, Job::new(id, nodes, walltime));
        self.queue.push_back(id);
        id
    }

    /// Healthy free nodes.
    fn candidates(&self) -> BTreeSet<usize> {
        self.free
            .iter()
            .copied()
            .filter(|&n| self.health.schedulable(n))
            .collect()
    }

    /// Start one job now (must have been allocated).
    fn start(&mut self, id: JobId, alloc: Vec<usize>, vni: u32, sim: &mut Simulator<SchedEvent>) {
        for &n in &alloc {
            self.free.remove(&n);
        }
        // simlint::allow(panic-in-lib): private fn; every caller passes an id it just pulled out of `self.jobs`, so a miss is scheduler-state corruption worth crashing on
        let job = self.jobs.get_mut(&id).expect("starting job exists");
        job.allocation = alloc;
        job.vni = Some(vni);
        job.state = JobState::Running;
        job.end_time = Some(sim.now() + job.walltime);
        sim.schedule_in(job.walltime, SchedEvent::JobEnd(id));
    }

    /// Earliest instant at which at least `needed` healthy nodes will be
    /// free, given the currently running jobs (the blocked head's
    /// *reservation* under EASY backfill).
    fn reservation_time(&self, needed: usize, now: SimTime) -> SimTime {
        let mut free = self.candidates().len();
        if free >= needed {
            return now;
        }
        let mut ends: Vec<(SimTime, usize)> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .filter_map(|j| j.end_time.map(|e| (e, j.nodes)))
            .collect();
        ends.sort();
        for (t, nodes) in ends {
            free += nodes;
            if free >= needed {
                return t;
            }
        }
        SimTime::MAX
    }

    /// Try to start queued jobs (FIFO, plus EASY backfill when enabled),
    /// scheduling their end events into `sim`. Returns the jobs started.
    pub fn schedule(&mut self, sim: &mut Simulator<SchedEvent>) -> Vec<JobId> {
        let mut started = Vec::new();
        // FIFO pass.
        while let Some(&id) = self.queue.front() {
            let candidates = self.candidates();
            let nodes = self.jobs[&id].nodes;
            let Some(alloc) = allocate(&self.df, &candidates, nodes, self.policy) else {
                break; // FIFO head blocked
            };
            let Some(vni) = self.vnis.allocate() else {
                break;
            };
            self.queue.pop_front();
            self.start(id, alloc, vni, sim);
            started.push(id);
        }
        // EASY backfill pass: later jobs may start if they end before the
        // head's reservation or leave its node count untouched.
        if self.backfill {
            if let Some(&head) = self.queue.front() {
                let head_nodes = self.jobs[&head].nodes;
                let now = sim.now();
                let reservation = self.reservation_time(head_nodes, now);
                let later: Vec<JobId> = self.queue.iter().skip(1).copied().collect();
                for id in later {
                    let candidates = self.candidates();
                    let job = &self.jobs[&id];
                    let fits_now = candidates.len() >= job.nodes;
                    if !fits_now {
                        continue;
                    }
                    let ends_before_reservation = now
                        .checked_add(job.walltime)
                        .map(|e| e <= reservation)
                        .unwrap_or(false);
                    let spares_reservation = candidates.len() - job.nodes >= head_nodes;
                    if !(ends_before_reservation || spares_reservation) {
                        continue;
                    }
                    let Some(alloc) = allocate(&self.df, &candidates, job.nodes, self.policy)
                    else {
                        continue;
                    };
                    let Some(vni) = self.vnis.allocate() else {
                        break;
                    };
                    self.queue.retain(|&q| q != id);
                    self.start(id, alloc, vni, sim);
                    started.push(id);
                }
            }
        }
        started
    }

    /// Handle a job-end event: release nodes (through checknode) and the
    /// VNI.
    pub fn handle(&mut self, ev: SchedEvent) {
        match ev {
            SchedEvent::JobEnd(id) => {
                // simlint::allow(panic-in-lib): a JobEnd event is only ever scheduled by `start` for a job in the map, and jobs are never removed — the assert below already treats this path as a hard invariant
                let job = self.jobs.get_mut(&id).expect("ending job exists");
                assert_eq!(job.state, JobState::Running, "double end for {id:?}");
                job.state = JobState::Completed;
                job.end_time = None;
                if let Some(vni) = job.vni.take() {
                    self.vnis.release(vni);
                }
                for &n in &job.allocation {
                    self.free.insert(n);
                }
                self.completed.push(id);
            }
        }
    }

    /// Drive the full simulation until all submitted jobs complete; returns
    /// the makespan.
    pub fn run_to_completion(&mut self) -> SimTime {
        let mut sim: Simulator<SchedEvent> = Simulator::new();
        self.schedule(&mut sim);
        while let Some((_, ev)) = sim.pop() {
            self.handle(ev);
            self.schedule(&mut sim);
        }
        assert!(self.queue.is_empty(), "jobs left unschedulable");
        sim.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontier_fabric::dragonfly::DragonflyParams;

    fn sched() -> Scheduler {
        // 4 groups x 4 switches x 4 eps, 4 NICs/node -> 4 nodes/group,
        // 16 nodes total.
        let df = Dragonfly::build(DragonflyParams::scaled(4, 4, 4));
        Scheduler::new(df, PlacementPolicy::TopologyAware)
    }

    #[test]
    fn single_job_runs_and_completes() {
        let mut s = sched();
        let id = s.submit(4, SimTime::from_secs(100));
        let makespan = s.run_to_completion();
        assert_eq!(s.job(id).state, JobState::Completed);
        assert_eq!(makespan, SimTime::from_secs(100));
        assert_eq!(s.free_nodes(), 16);
    }

    #[test]
    fn nodes_are_exclusive() {
        let mut s = sched();
        s.submit(10, SimTime::from_secs(50));
        s.submit(10, SimTime::from_secs(50));
        let mut sim = Simulator::new();
        let started = s.schedule(&mut sim);
        // Only one fits at a time (10 + 10 > 16).
        assert_eq!(started.len(), 1);
        assert_eq!(s.running(), 1);
        assert_eq!(s.queued(), 1);
    }

    #[test]
    fn fifo_serializes_conflicting_jobs() {
        let mut s = sched();
        s.submit(12, SimTime::from_secs(100));
        s.submit(12, SimTime::from_secs(100));
        let makespan = s.run_to_completion();
        assert_eq!(makespan, SimTime::from_secs(200));
    }

    #[test]
    fn parallel_jobs_share_the_machine() {
        let mut s = sched();
        s.submit(8, SimTime::from_secs(100));
        s.submit(8, SimTime::from_secs(100));
        let makespan = s.run_to_completion();
        assert_eq!(makespan, SimTime::from_secs(100));
    }

    #[test]
    fn each_job_gets_unique_vni() {
        let mut s = sched();
        let a = s.submit(4, SimTime::from_secs(10));
        let b = s.submit(4, SimTime::from_secs(10));
        let mut sim = Simulator::new();
        s.schedule(&mut sim);
        let va = s.job(a).vni.unwrap();
        let vb = s.job(b).vni.unwrap();
        assert_ne!(va, vb);
    }

    #[test]
    fn drained_nodes_are_skipped() {
        let mut s = sched();
        for n in 0..8 {
            s.health_mut().drain(n);
        }
        s.submit(10, SimTime::from_secs(10));
        let mut sim = Simulator::new();
        let started = s.schedule(&mut sim);
        // Only 8 healthy nodes remain; the 10-node job cannot start.
        assert!(started.is_empty());
        // Repairing lets it through.
        for n in 0..8 {
            s.health_mut().repair(n);
        }
        let started = s.schedule(&mut sim);
        assert_eq!(started.len(), 1);
        let id = started[0];
        let alloc = s.job(id).allocation.clone();
        assert_eq!(alloc.len(), 10);
    }

    #[test]
    fn easy_backfill_fills_the_hole() {
        // 16-node machine. Job A takes 12 nodes for 100 s. Job B wants all
        // 16 (blocked). Job C wants 4 nodes for 50 s: without backfill it
        // waits behind B; with EASY it runs in the hole because it ends
        // before B's reservation (t=100).
        let mk = |backfill: bool| {
            let df = Dragonfly::build(DragonflyParams::scaled(4, 4, 4));
            let mut s = Scheduler::new(df, PlacementPolicy::TopologyAware);
            if backfill {
                s = s.with_backfill();
            }
            s.submit(12, SimTime::from_secs(100)); // A
            s.submit(16, SimTime::from_secs(100)); // B (blocked head)
            s.submit(4, SimTime::from_secs(50)); // C (backfill candidate)
            let mut sim = Simulator::new();
            let started = s.schedule(&mut sim);
            (s, started.len())
        };
        let (_, fifo_started) = mk(false);
        assert_eq!(fifo_started, 1, "FIFO starts only A");
        let (s, easy_started) = mk(true);
        assert_eq!(easy_started, 2, "EASY starts A and backfills C");
        assert_eq!(s.running(), 2);
    }

    #[test]
    fn backfill_never_delays_the_head() {
        // Same setup but C runs 200 s > B's reservation at t=100 and would
        // hold 4 of B's nodes: EASY must NOT start it.
        let build = || {
            let df = Dragonfly::build(DragonflyParams::scaled(4, 4, 4));
            let mut s = Scheduler::new(df, PlacementPolicy::TopologyAware).with_backfill();
            s.submit(12, SimTime::from_secs(100));
            s.submit(16, SimTime::from_secs(100));
            let c = s.submit(4, SimTime::from_secs(200));
            (s, c)
        };
        // At t=0, C must not backfill.
        let (mut s, c) = build();
        let mut sim = Simulator::new();
        s.schedule(&mut sim);
        assert_eq!(s.job(c).state, JobState::Pending);
        // And end to end, B still starts at t=100 (C runs after, 200-400).
        let (mut s, _) = build();
        let makespan = s.run_to_completion();
        assert_eq!(makespan, SimTime::from_secs(400));
    }

    #[test]
    fn backfill_improves_makespan_on_a_mix() {
        let mk = |backfill: bool| {
            let df = Dragonfly::build(DragonflyParams::scaled(4, 4, 4));
            let mut s = Scheduler::new(df, PlacementPolicy::TopologyAware);
            if backfill {
                s = s.with_backfill();
            }
            // A leaves a 4-node hole; B blocks; C fits the hole exactly
            // and ends at A's completion (the head's reservation).
            s.submit(12, SimTime::from_secs(100));
            s.submit(16, SimTime::from_secs(100));
            s.submit(4, SimTime::from_secs(100));
            s.run_to_completion()
        };
        let fifo = mk(false);
        let easy = mk(true);
        assert_eq!(fifo, SimTime::from_secs(300));
        assert_eq!(easy, SimTime::from_secs(200));
    }

    #[test]
    fn vni_released_after_completion() {
        let mut s = sched();
        s.submit(4, SimTime::from_secs(5));
        s.run_to_completion();
        // All VNIs returned.
        let mut sim = Simulator::new();
        let id = s.submit(4, SimTime::from_secs(5));
        s.schedule(&mut sim);
        assert!(s.job(id).vni.is_some());
    }
}
