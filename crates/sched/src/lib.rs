//! # frontier-sched
//!
//! Model of Frontier's system-level scheduling stack (§3.4.2): a Slurm-like
//! scheduler with exclusive-node allocation, *checknode* health gating
//! between jobs, per-jobstep VNI (Virtual Network Identifier) isolation,
//! and the topology-aware placement policy the paper describes:
//!
//! > "For small jobs able to fit within a single rack/group, Slurm will
//! > pack allocations tightly to minimize global hops. For larger jobs,
//! > Slurm will attempt to spread a job evenly across as many Slingshot
//! > groups as possible to maximize the number of global connections (and
//! > thus global bandwidth) available to minimal routing."

pub mod health;
pub mod job;
pub mod placement;
pub mod slurm;
pub mod vni;

pub mod prelude {
    pub use crate::health::{HealthState, NodeHealth};
    pub use crate::job::{Job, JobId, JobState};
    pub use crate::placement::{allocate, placement_metrics, PlacementPolicy};
    pub use crate::slurm::Scheduler;
    pub use crate::vni::VniAllocator;
}

pub use prelude::*;
