//! Virtual Network Identifier allocation (§3.4.2).
//!
//! "Slurm integrates with the Slingshot software to allocate a unique
//! Virtual Network Identifier (VNI) per jobstep to support isolation
//! between applications." VNIs are a finite hardware namespace, so the
//! allocator recycles released ids.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Allocator over a bounded VNI namespace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VniAllocator {
    /// First allocatable VNI (low values are reserved for system traffic).
    base: u32,
    /// One past the last allocatable VNI.
    limit: u32,
    next_fresh: u32,
    recycled: BTreeSet<u32>,
    live: BTreeSet<u32>,
}

impl VniAllocator {
    /// The Slingshot VNI space is 16 bits; Frontier reserves the bottom of
    /// the range for system services.
    pub fn slingshot() -> Self {
        Self::new(16, 1 << 16)
    }

    pub fn new(base: u32, limit: u32) -> Self {
        assert!(base < limit, "empty VNI space");
        VniAllocator {
            base,
            limit,
            next_fresh: base,
            recycled: BTreeSet::new(),
            live: BTreeSet::new(),
        }
    }

    /// Allocate a VNI for a new jobstep. Returns `None` if the namespace is
    /// exhausted.
    pub fn allocate(&mut self) -> Option<u32> {
        let vni = if let Some(&v) = self.recycled.iter().next() {
            self.recycled.remove(&v);
            v
        } else if self.next_fresh < self.limit {
            let v = self.next_fresh;
            self.next_fresh += 1;
            v
        } else {
            return None;
        };
        self.live.insert(vni);
        Some(vni)
    }

    /// Release a VNI when its jobstep completes.
    ///
    /// # Panics
    /// Panics if the VNI is not currently live (double release).
    pub fn release(&mut self, vni: u32) {
        assert!(self.live.remove(&vni), "release of non-live VNI {vni}");
        self.recycled.insert(vni);
    }

    /// Total number of allocatable VNIs in the namespace.
    pub fn capacity(&self) -> usize {
        (self.limit - self.base) as usize
    }

    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    pub fn is_live(&self, vni: u32) -> bool {
        self.live.contains(&vni)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_unique() {
        let mut a = VniAllocator::new(10, 100);
        let mut seen = BTreeSet::new();
        for _ in 0..90 {
            let v = a.allocate().unwrap();
            assert!((10..100).contains(&v));
            assert!(seen.insert(v), "duplicate {v}");
        }
        assert!(a.allocate().is_none(), "namespace exhausted");
    }

    #[test]
    fn release_recycles() {
        let mut a = VniAllocator::new(0, 2);
        let v0 = a.allocate().unwrap();
        let _v1 = a.allocate().unwrap();
        assert!(a.allocate().is_none());
        a.release(v0);
        assert_eq!(a.allocate(), Some(v0));
    }

    #[test]
    #[should_panic(expected = "non-live")]
    fn double_release_panics() {
        let mut a = VniAllocator::new(0, 4);
        let v = a.allocate().unwrap();
        a.release(v);
        a.release(v);
    }

    #[test]
    fn live_tracking() {
        let mut a = VniAllocator::slingshot();
        let v = a.allocate().unwrap();
        assert!(a.is_live(v));
        assert_eq!(a.live_count(), 1);
        a.release(v);
        assert!(!a.is_live(v));
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    fn slingshot_space_reserves_system_range() {
        let mut a = VniAllocator::slingshot();
        assert_eq!(a.capacity(), (1 << 16) - 16);
        let v = a.allocate().unwrap();
        assert!(v >= 16);
    }
}
