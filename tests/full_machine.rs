//! Cross-crate integration: the assembled machine is internally consistent
//! — node aggregates, fabric, storage, power, and resilience agree with
//! each other and with the paper's Table 1/2 arithmetic.

use frontier::prelude::*;

#[test]
fn machine_assembles_at_frontier_scale() {
    let m = FrontierMachine::standard();
    assert_eq!(m.nodes(), 9_472);
    assert_eq!(m.fabric().params().total_endpoints(), 37_888);
    assert_eq!(m.node().gcd_count(), 8);
}

#[test]
fn node_aggregates_match_fabric_scale() {
    // The node model's injection spec must equal what the fabric provides
    // per node: 4 NICs x 25 GB/s.
    let m = FrontierMachine::standard();
    let from_node = m.node().injection_bandwidth().as_gb_s();
    let from_fabric =
        m.fabric().params().link_rate.as_gb_s() * m.fabric().params().nics_per_node as f64;
    assert!((from_node - from_fabric).abs() < 1e-9);
}

#[test]
fn table1_numbers_are_derived_not_transcribed() {
    let m = FrontierMachine::standard();
    let a = m.aggregates();
    // Node model x node count, computed two independent ways.
    let hbm_tb_s = m.node().hbm_bandwidth().as_tb_s() * m.nodes() as f64;
    assert!((a.hbm_bandwidth.as_tb_s() - hbm_tb_s).abs() < 1.0);
    assert!((a.dgemm.as_ef() - 2.0).abs() < 0.01);
}

#[test]
fn taper_arithmetic_consistent() {
    let m = FrontierMachine::standard();
    let df = m.fabric();
    // 73 pipes x 100 GB/s vs 512 endpoints x 25 GB/s.
    let global = df.group_global_bandwidth().as_gb_s();
    let inject = df.group_injection_bandwidth().as_gb_s();
    assert!((global - 7_300.0).abs() < 1.0);
    assert!((inject - 12_800.0).abs() < 1.0);
    assert!((df.taper() - global / inject).abs() < 1e-12);
}

#[test]
fn storage_can_absorb_hbm_checkpoints() {
    // The design claim of §4.3.2: Orion ingests a 15% HBM checkpoint fast
    // enough that hourly checkpointing costs ~5% of walltime.
    let m = FrontierMachine::standard();
    let hbm = m.aggregates().hbm_capacity;
    let bytes = Bytes::new((hbm.as_f64() * 0.15) as u64);
    let t = m.orion().checkpoint_ingest_time(bytes, Bytes::gib(8));
    assert!(t.as_secs_f64() < 200.0, "{}", t.as_secs_f64());
}

#[test]
fn mtti_supports_practical_checkpointing() {
    // Resilience x storage: at the modelled MTTI and the modelled ingest
    // time, Young/Daly still leaves >80% machine efficiency.
    let m = FrontierMachine::standard();
    let mtti_s = m.mtti().mtti_hours * 3600.0;
    let hbm = m.aggregates().hbm_capacity;
    let write_s = m
        .orion()
        .checkpoint_ingest_time(Bytes::new((hbm.as_f64() * 0.15) as u64), Bytes::gib(8))
        .as_secs_f64();
    let plan = frontier::resilience::checkpoint::plan(write_s, mtti_s);
    assert!(plan.efficiency > 0.80, "{}", plan.efficiency);
}

#[test]
fn power_is_consistent_with_green500() {
    let m = FrontierMachine::standard();
    let g = m.green500();
    assert!((g.rmax.as_ef() - 1.102).abs() < 0.01);
    assert!(g.gf_per_watt > 50.0 && g.gf_per_watt < 55.0);
    assert!(g.mw_per_ef < 20.0);
}

#[test]
fn exascale_report_scorecard() {
    // §5's four challenges, as the paper scores them.
    let m = FrontierMachine::standard();
    // 1. Energy and power: excels.
    assert!(m.green500().gf_per_watt > 50.0);
    // 2. Memory and storage: HBM everywhere, tiers meet app needs.
    assert!(m.aggregates().hbm_bandwidth.as_tb_s() > 100_000.0);
    // 3. Concurrency: >500M threads near 1 GHz.
    let threads = m.nodes() * 4 * 220 * 64;
    assert!(threads > 500_000_000);
    // 4. Resiliency: struggles — MTTI still in the ~4h band.
    assert!(m.mtti().mtti_hours < 8.0);
}
