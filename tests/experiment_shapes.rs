//! End-to-end experiment-shape tests: the qualitative claims of the
//! paper's evaluation must hold in the simulator — who wins, by roughly
//! what factor, where the crossovers fall.

use frontier::fabric::dragonfly::{Dragonfly, DragonflyParams};
use frontier::fabric::fattree::{FatTree, FatTreeParams};
use frontier::fabric::gpcnet::{self, GpcnetConfig};
use frontier::fabric::mpigraph;
use frontier::fabric::patterns::all_to_all_throughput;
use frontier::fabric::routing::RoutePolicy;
use frontier::node::dram::{DramConfig, DramSystem, NpsMode, StoreMode};
use frontier::node::gemm::{GemmModel, Precision};
use frontier::node::stream::cpu_stream;
use frontier::node::transfer::{TransferEngine, TransferKind};
use frontier::prelude::*;

/// Fig. 6's central contrast: the dragonfly distribution is wide with a
/// small fast population; the fat-tree is tight.
#[test]
fn dragonfly_wide_fattree_tight() {
    let df = Dragonfly::build(DragonflyParams::scaled(16, 8, 8));
    let d = mpigraph::run_dragonfly(&df, RoutePolicy::adaptive_default(), 1);
    let ft = FatTree::build(FatTreeParams::scaled(32, 32));
    let s = mpigraph::run_fattree(&ft, 1);

    // Wide vs tight.
    assert!(d.summary.std_dev / d.summary.mean > 0.2);
    assert!(s.summary.std_dev / s.summary.mean < 0.05);
    // The fast population near NIC rate exists but is small.
    let fast = d.fraction_in(16.0, 20.0);
    assert!(fast > 0.0 && fast < 0.25, "{fast}");
    // Uncontended peaks: ~17.5 (Slingshot) vs ~8.5 (EDR) — similar
    // fractions of their line rates.
    assert!((d.summary.max / 25.0 - s.summary.max / 12.5).abs() < 0.12);
}

/// Table 5's central result: with congestion control at 8 PPN, congested
/// equals isolated; without it, victims suffer.
#[test]
fn congestion_control_isolates_victims() {
    let on = gpcnet::run(&GpcnetConfig::scaled_for_tests());
    for i in 0..3 {
        assert!((on.impact_factor(i) - 1.0).abs() < 0.07, "test {i}");
    }
    let mut cfg = GpcnetConfig::scaled_for_tests();
    cfg.congestion_control = false;
    let off = gpcnet::run(&cfg);
    let worst = (0..3).map(|i| off.impact_factor(i)).fold(0.0, f64::max);
    assert!(worst > 1.3, "CC off should hurt, worst {worst}");
}

/// §4.2.2: non-minimal routing halves effective global bandwidth under
/// saturating all-to-all, landing at ~30 GB/s/node.
#[test]
fn all_to_all_crossover() {
    let df = Dragonfly::frontier();
    let adaptive = all_to_all_throughput(&df, 1.0);
    let minimal = all_to_all_throughput(&df, 0.0);
    let ratio = minimal.per_node.as_gb_s() / adaptive.per_node.as_gb_s();
    assert!((1.8..2.2).contains(&ratio), "{ratio}");
    assert!((27.0..34.0).contains(&adaptive.per_node.as_gb_s()));
}

/// Table 3's central mechanism: non-temporal stores beat temporal for
/// every kernel except Copy (which compilers lower to NT memcpy anyway).
#[test]
fn write_allocate_tax_shape() {
    let d = DramSystem::new(DramConfig::trento());
    let t = cpu_stream(&d, StoreMode::Temporal, NpsMode::Nps4);
    let nt = cpu_stream(&d, StoreMode::NonTemporal, NpsMode::Nps4);
    for (a, b) in t.iter().zip(nt.iter()) {
        assert!(b.bandwidth.as_mb_s() >= a.bandwidth.as_mb_s() * 0.999);
    }
    // Scale suffers the most (smallest nominal:actual ratio).
    let scale_gap = nt[1].bandwidth.as_mb_s() / t[1].bandwidth.as_mb_s();
    let triad_gap = nt[3].bandwidth.as_mb_s() / t[3].bandwidth.as_mb_s();
    assert!(scale_gap > triad_gap && triad_gap > 1.2);
}

/// Fig. 3's headline: FP64 GEMM exceeds the GCD's vector peak, and FP16
/// exceeds FP64 by ~3.3x.
#[test]
fn gemm_shape() {
    let m = GemmModel::mi250x_gcd();
    let f64v = m.run(14_080, Precision::Fp64).achieved.as_tf();
    let f16v = m.run(14_080, Precision::Fp16).achieved.as_tf();
    assert!(f64v > m.vector_peak(Precision::Fp64).as_tf());
    assert!((f16v / f64v - 3.29).abs() < 0.2, "{}", f16v / f64v);
}

/// Fig. 5's crossover: SDMA wins on 1-lane pairs, CU kernels win on 2- and
/// 4-lane pairs.
#[test]
fn sdma_cu_crossover() {
    let e = TransferEngine::bard_peak();
    let sd = |a, b| {
        e.peer_bandwidth(a, b, TransferKind::Sdma)
            .unwrap()
            .as_gb_s()
    };
    let cu = |a, b| {
        e.peer_bandwidth(a, b, TransferKind::CuKernel)
            .unwrap()
            .as_gb_s()
    };
    assert!(sd(0, 3) > cu(0, 3), "1 lane: SDMA should win");
    assert!(cu(0, 4) > sd(0, 4), "2 lanes: CU should win");
    assert!(cu(0, 1) > sd(0, 1), "4 lanes: CU should win");
}

/// Tables 6-7: every application clears its KPP in the model, as in the
/// paper.
#[test]
fn all_kpps_met() {
    let f = frontier::apps::machine::MachineModel::frontier();
    for row in frontier::apps::caar::caar_results(&f) {
        assert!(row.achieved >= 4.0, "{}", row.app);
    }
    for row in frontier::apps::ecp::ecp_results(&f) {
        assert!(row.achieved >= 50.0, "{}", row.app);
    }
}

/// The NPS crossover: NPS-4 wins under full-socket load (which is why
/// Frontier runs NPS-4), at slightly better loaded latency too.
#[test]
fn nps_crossover() {
    let d = DramSystem::new(DramConfig::trento());
    let n4 = cpu_stream(&d, StoreMode::NonTemporal, NpsMode::Nps4);
    let n1 = cpu_stream(&d, StoreMode::NonTemporal, NpsMode::Nps1);
    let ratio = n4[3].bandwidth.as_gb_s() / n1[3].bandwidth.as_gb_s();
    assert!((1.3..1.6).contains(&ratio), "{ratio}");
    assert!(d.loaded_latency(NpsMode::Nps4) < d.loaded_latency(NpsMode::Nps1));
}

/// Scheduler effect is visible in the fabric: a spread allocation has
/// strictly more minimal-path global bandwidth than a packed one.
#[test]
fn placement_changes_available_bandwidth() {
    use frontier::sched::placement::{allocate, placement_metrics, PlacementPolicy};
    use std::collections::BTreeSet;
    let df = Dragonfly::build(DragonflyParams::scaled(8, 8, 4));
    let free: BTreeSet<usize> = (0..df.params().total_nodes()).collect();
    let pack = allocate(&df, &free, 16, PlacementPolicy::Pack).unwrap();
    let spread = allocate(&df, &free, 16, PlacementPolicy::Spread).unwrap();
    let mp = placement_metrics(&df, &pack);
    let ms = placement_metrics(&df, &spread);
    assert!(ms.minimal_global_bandwidth.as_gb_s() > 2.0 * mp.minimal_global_bandwidth.as_gb_s());
}

/// The machine-level DES ties together: a job stream with failure
/// injection completes deterministically.
#[test]
fn deterministic_end_to_end() {
    let run = || {
        let df = Dragonfly::build(DragonflyParams::scaled(8, 4, 4));
        let mut s = frontier::sched::slurm::Scheduler::new(
            df,
            frontier::sched::placement::PlacementPolicy::TopologyAware,
        );
        let mut rng = StreamRng::from_seed(5);
        for _ in 0..20 {
            let nodes = 1 + rng.index(10);
            s.submit(nodes, SimTime::from_secs(100 + rng.int_range(0, 1000)));
        }
        s.run_to_completion()
    };
    assert_eq!(run(), run());
}
