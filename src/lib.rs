//! # frontier
//!
//! A full-system architectural simulator of the **Frontier** exascale
//! supercomputer, reproducing the evaluation of *Frontier: Exploring
//! Exascale — The System Architecture of the First Exascale Supercomputer*
//! (Atchley et al., SC '23).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim_core`] — deterministic discrete-event engine, RNG streams,
//!   statistics;
//! * [`node`] — the Bard Peak node: Trento CPU, MI250X GCDs, DDR4/HBM2e
//!   memory systems, the xGMI twisted ladder, SDMA/CU transfer engines,
//!   STREAM and GEMM execution models;
//! * [`fabric`] — the Slingshot dragonfly and the Summit fat-tree baseline,
//!   with routing, a max-min-fair flow solver, mpiGraph, and GPCNeT;
//! * [`storage`] — node-local NVMe burst buffers and the Orion Lustre file
//!   system (SSUs, dRAID, PFL/DoM);
//! * [`sched`] — the Slurm-like topology-aware scheduler;
//! * [`apps`] — machine models and the CAAR/ECP application proxies;
//! * [`resilience`] — FIT rates, MTTI, checkpoint planning;
//! * [`power`] — the component power model and Green500 arithmetic;
//! * [`core`](frontier_core) — the integrated machine and Tables 1–2.
//!
//! ## Quickstart
//!
//! ```
//! use frontier::prelude::*;
//!
//! let machine = FrontierMachine::standard();
//! assert_eq!(machine.nodes(), 9_472);
//! assert!((machine.fabric().taper() - 0.57).abs() < 0.01);
//! println!("{}", machine.table1());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper
//! (`cargo run --release -p frontier-bench --bin repro`).

pub use frontier_campaign as campaign;
pub use frontier_core::prelude;
pub use frontier_core::{apps, fabric, node, power, resilience, sched, sim_core, storage};
pub use frontier_miniapps as miniapps;

/// The integrated machine handle (re-exported from `frontier-core`).
pub use frontier_core::machine::FrontierMachine;
