//! An end-to-end hero campaign: a GESTS-style full-machine turbulence run
//! scheduled through Slurm, stepping the PSDNS model, checkpointing to
//! Orion at the Young/Daly cadence, and absorbing injected hardware
//! failures — every subsystem model working together.
//!
//! ```text
//! cargo run --release --example hero_campaign
//! ```

use frontier::apps::fft::{Decomp, PsdnsRun};
use frontier::prelude::*;
use frontier::resilience::checkpoint;
use frontier::resilience::fit::{FitModel, Inventory};
use frontier::resilience::mtti::{analytic_mtti, failure_schedule};

fn main() {
    let machine = FrontierMachine::standard();
    let orion = machine.orion();

    // The science: a 32768^3 DNS campaign of 12,000 time steps.
    let run = PsdnsRun::frontier(Decomp::OneD);
    let step = run.step_time();
    let steps_total = 12_000u64;
    println!(
        "campaign: {}^3 PSDNS, {} steps x {:.2} s/step = {:.1} h of pure compute",
        run.n,
        steps_total,
        step.as_secs_f64(),
        steps_total as f64 * step.as_secs_f64() / 3600.0
    );

    // Checkpoint plan: the DNS state is ~4 fields.
    let state = Bytes::new((4.0 * run.field_bytes()) as u64);
    let write_s = orion
        .checkpoint_ingest_time(state, Bytes::gib(8))
        .as_secs_f64();
    let mtti = analytic_mtti(&Inventory::frontier(), &FitModel::frontier());
    let plan = checkpoint::plan(write_s, mtti.mtti_hours * 3600.0);
    let steps_per_checkpoint = (plan.interval_s / step.as_secs_f64()).max(1.0) as u64;
    println!(
        "checkpoint: {:.1} TB of state -> {:.0} s per write; Daly interval {:.0} min \
         = every {} steps",
        state.as_tb(),
        write_s,
        plan.interval_s / 60.0,
        steps_per_checkpoint
    );

    // Failure schedule for the campaign window.
    let horizon_h = 30.0;
    let failures = failure_schedule(
        &Inventory::frontier(),
        &FitModel::frontier(),
        horizon_h,
        2023,
    );
    println!(
        "failures injected over {horizon_h:.0} h: {}",
        failures.len()
    );

    // Replay: step, checkpoint, absorb failures by rolling back.
    let mut t = 0.0f64;
    let mut committed_steps = 0u64;
    let mut steps_since_ckpt = 0u64;
    let mut fi = 0usize;
    let mut rollbacks = 0u32;
    while committed_steps + steps_since_ckpt < steps_total {
        let next_fail = failures
            .get(fi)
            .map(|(ft, _)| ft.as_secs_f64())
            .unwrap_or(f64::INFINITY);
        if t + step.as_secs_f64() > next_fail {
            // Interrupt: lose uncommitted steps, pay a restart.
            t = next_fail + 600.0; // 10 min reboot + requeue
            steps_since_ckpt = 0;
            rollbacks += 1;
            fi += 1;
            continue;
        }
        t += step.as_secs_f64();
        steps_since_ckpt += 1;
        if steps_since_ckpt >= steps_per_checkpoint {
            t += write_s;
            committed_steps += steps_since_ckpt;
            steps_since_ckpt = 0;
        }
    }
    let science_s = steps_total as f64 * step.as_secs_f64();
    println!(
        "\ncampaign finished in {:.1} h wall ({:.1} h of science): {:.1}% efficiency, \
         {} rollbacks",
        t / 3600.0,
        science_s / 3600.0,
        100.0 * science_s / t,
        rollbacks
    );
    println!("Daly-model prediction was {:.1}%", plan.efficiency * 100.0);

    // And the FOM the paper would report for this campaign:
    println!(
        "\nFOM (N^3/t_step): {:.3e} grid-point updates/s ({:.2}x the Summit baseline)",
        run.fom(),
        run.speedup_vs_summit()
    );
}
