//! The §5 scorecard: how Frontier measures up against the 2008 DARPA
//! exascale report's four challenges, computed from the models.
//!
//! ```text
//! cargo run --release --example exascale_report
//! ```

use frontier::apps::hpl::{run as run_hpl, HplConfig};
use frontier::prelude::*;
use frontier::resilience::checkpoint;

fn main() {
    let machine = FrontierMachine::standard();

    println!("=== Frontier vs the 2008 exascale report ===\n");

    // 1. Energy and power.
    let g = machine.green500();
    let hpl = run_hpl(&HplConfig::frontier_june2022());
    println!("1. ENERGY AND POWER — excels");
    println!(
        "   HPL: {:.3} EF in {:.2} h ({:.0}% of vector peak, panel-loop model)",
        hpl.rmax.as_ef(),
        hpl.runtime.as_secs_f64() / 3600.0,
        hpl.efficiency_vs_vector_peak * 100.0
    );
    println!(
        "   {:.1} GF/W (target: 50) | {:.1} MW/EF (bound: 20)",
        g.gf_per_watt, g.mw_per_ef
    );

    // 2. Memory and storage.
    let a = machine.aggregates();
    println!("\n2. MEMORY AND STORAGE — met by heterogeneity");
    println!(
        "   HBM2e: {:.1} PiB at {:.1} PB/s ({}x the DDR rate per node)",
        a.hbm_capacity.as_pib(),
        a.hbm_bandwidth.as_tb_s() / 1000.0,
        machine.node().hbm_to_ddr_ratio().round()
    );
    let orion = machine.orion();
    println!(
        "   Orion: {:.0} PB disk + {:.1} PB flash; ingests a 15% HBM checkpoint in {:.0} s",
        orion
            .capacity(frontier::storage::orion::OrionTier::Capacity)
            .as_pb(),
        orion
            .capacity(frontier::storage::orion::OrionTier::Performance)
            .as_pb(),
        orion
            .checkpoint_ingest_time(Bytes::tib(710), Bytes::gib(8))
            .as_secs_f64()
    );

    // 3. Concurrency and locality.
    let threads = machine.nodes() * 4 * 220 * 64;
    println!("\n3. CONCURRENCY AND LOCALITY — met by GPUs");
    println!(
        "   {} nodes x 8 GCDs = {} accelerators; {} threads near 1 GHz \
         (report projected needing 1 billion cores)",
        machine.nodes(),
        machine.nodes() * 8,
        threads
    );

    // 4. Resiliency.
    let mtti = machine.mtti();
    println!("\n4. RESILIENCY — still the struggle");
    println!(
        "   hardware MTTI {:.1} h (the report's 10x-improved projection was ~4 h)",
        mtti.mtti_hours
    );
    for (class, share) in mtti.shares.iter().take(3) {
        println!(
            "     {:>14}: {:>4.1}% of interrupts",
            class.name(),
            share * 100.0
        );
    }
    let plan = checkpoint::plan(180.0, mtti.mtti_hours * 3600.0);
    println!(
        "   mitigation: checkpoint every {:.0} min -> {:.1}% machine efficiency",
        plan.interval_s / 60.0,
        plan.efficiency * 100.0
    );

    println!(
        "\nVerdict (the paper's): judged by real application speedups — every CAAR \
         app >4x, every ECP app >50x —\nFrontier meets the spirit of the exascale \
         definition, at a cost the 2008 report declined to model."
    );
}
