//! A machine-design campaign: sweep "what if Frontier were built
//! differently?" variants through the warm-start campaign engine and
//! read the FOM / power / MTTI Pareto frontier off the result.
//!
//! The grid below asks three questions at full machine scale:
//! what do faster links (150 → 250 Gb/s) buy, what does a third
//! global-bundle taper stage buy, and how do component FIT rates and
//! the power envelope trade against both.
//!
//! ```text
//! cargo run --release --example design_campaign
//! ```

use frontier::campaign::engine::{self, Mode};
use frontier::campaign::spec::CampaignSpec;

const GRID: &str = r#"
name = "frontier-design-study"
seeds = [2023]
workloads = ["mpigraph", "hpl", "mtti"]

[machine]
groups = [74]

[sweep]
link_rate_gbit = [150.0, 200.0, 250.0]
bundles_per_group_pair = [1, 2, 3]

[overlay]
fit_scale = [0.5, 1.0, 2.0]
power_scale = [0.95, 1.0, 1.05]
"#;

fn main() {
    let spec = CampaignSpec::parse_str(GRID).expect("embedded grid parses");
    println!(
        "design campaign \"{}\": {} full-machine variants ({} capacity points x {} overlays)",
        spec.name,
        spec.variant_count(),
        spec.capacity_count(),
        spec.overlay_count(),
    );

    let result = engine::run(&spec, Mode::Parallel);
    let s = &result.stats;
    println!(
        "sweep: {} cold solves + {} warm resolves, {} fabric outcomes for {} variants\n",
        s.cold_solves,
        s.warm_resolves,
        s.outcome_built,
        result.rows.len(),
    );

    println!("Pareto frontier (maximize FOM & MTTI, minimize power):");
    println!(
        "{:>4} {:>6} {:>8} {:>8} {:>10} {:>9} {:>10}",
        "i", "Gb/s", "bundles", "FITx", "FOM (EF)", "MW", "MTTI (h)"
    );
    for &i in &result.pareto {
        let r = &result.rows[i as usize];
        println!(
            "{:>4} {:>6.0} {:>8} {:>8.2} {:>10.3} {:>9.2} {:>10.1}",
            r.variant.index,
            r.variant.cap.link_rate_gbit,
            r.variant.cap.bundles_per_group_pair,
            r.variant.overlay.fit_scale,
            r.fom_ef.unwrap_or(f64::NAN),
            r.power_mw,
            r.mtti_hours.unwrap_or(f64::NAN),
        );
    }

    // The as-built machine, for reference.
    if let Some(asbuilt) = result.rows.iter().find(|r| {
        r.variant.cap.link_rate_gbit == 200.0
            && r.variant.cap.bundles_per_group_pair == 2
            && r.variant.overlay.fit_scale == 1.0
            && r.variant.overlay.power_scale == 1.0
    }) {
        println!(
            "\nas built (200 Gb/s, 2 bundles): FOM {:.3} EF, {:.2} MW, MTTI {:.1} h{}",
            asbuilt.fom_ef.unwrap_or(f64::NAN),
            asbuilt.power_mw,
            asbuilt.mtti_hours.unwrap_or(f64::NAN),
            if result.pareto.contains(&asbuilt.variant.index) {
                " — on the frontier"
            } else {
                " — dominated"
            },
        );
    }
}
