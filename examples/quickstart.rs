//! Quickstart: build the Frontier machine and read off its headline
//! architecture numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use frontier::prelude::*;

fn main() {
    let machine = FrontierMachine::standard();

    println!("{}", machine.table1());
    println!("{}", machine.table2());

    let node = machine.node();
    println!("One Bard Peak node:");
    println!("  GCDs (GPUs seen by the OS) : {}", node.gcd_count());
    println!("  CPU cores                  : {}", node.cpu().cores());
    println!(
        "  HBM2e                      : {} at {}",
        node.hbm_capacity(),
        node.hbm_bandwidth()
    );
    println!(
        "  DDR4                       : {} at {}",
        node.ddr_capacity(),
        node.ddr_bandwidth()
    );
    println!(
        "  HBM:DDR bandwidth ratio    : {:.0}x (Titan was 40x, Summit 16x)",
        node.hbm_to_ddr_ratio()
    );
    println!(
        "  injection                  : {} over 4 NICs attached to the OAMs",
        node.injection_bandwidth()
    );

    let df = machine.fabric();
    println!("\nSlingshot dragonfly:");
    println!("  groups            : {} compute", df.params().groups);
    println!("  endpoints         : {}", df.params().total_endpoints());
    println!("  per-group inject  : {}", df.group_injection_bandwidth());
    println!("  per-group global  : {}", df.group_global_bandwidth());
    println!("  taper             : {:.0}%", df.taper() * 100.0);
    println!("  global bandwidth  : {}", df.total_global_bandwidth());

    let g = machine.green500();
    println!(
        "\nGreen500: {:.3} EF at {:.1} MW = {:.1} GF/W",
        g.rmax.as_ef(),
        g.power_mw,
        g.gf_per_watt
    );

    let mtti = machine.mtti();
    println!(
        "MTTI: {:.1} h; top contributor: {} ({:.0}% of interrupts)",
        mtti.mtti_hours,
        mtti.shares[0].0.name(),
        mtti.shares[0].1 * 100.0
    );
}
