//! Failure injection: run a simulated hero job under the FIT model's
//! failure schedule with periodic checkpointing, and compare the measured
//! useful-work fraction against the Young/Daly first-order prediction.
//!
//! ```text
//! cargo run --release --example failure_injection
//! ```

use frontier::prelude::*;
use frontier::resilience::checkpoint;
use frontier::resilience::fit::{FitModel, Inventory};
use frontier::resilience::mtti::{analytic_mtti, failure_schedule};

/// Replay a week-long full-machine job at a given checkpoint interval and
/// return the useful-work fraction.
fn replay(
    interval_s: f64,
    write_s: f64,
    failures: &[(SimTime, frontier::resilience::fit::ComponentClass)],
    horizon_s: f64,
) -> f64 {
    let mut useful = 0.0; // seconds of committed work
    let mut segment_start = 0.0; // wall time the current segment began
    let mut committed_at = 0.0; // work committed at the last checkpoint
    let mut fi = 0usize;
    let mut t = 0.0;
    while t < horizon_s {
        // Next segment ends at a checkpoint or a failure, whichever first.
        let next_cp = segment_start + interval_s + write_s;
        let next_fail = failures
            .get(fi)
            .map(|(ft, _)| ft.as_secs_f64())
            .unwrap_or(f64::INFINITY);
        if next_fail < next_cp && next_fail < horizon_s {
            // Failure: lose everything since the last checkpoint.
            t = next_fail;
            fi += 1;
            useful = committed_at;
            segment_start = t;
        } else if next_cp < horizon_s {
            // Checkpoint completes: commit the interval's work.
            t = next_cp;
            committed_at += interval_s;
            useful = committed_at;
            segment_start = t;
        } else {
            // Horizon reached mid-segment; in-flight work is lost unless
            // checkpointed, so only committed work counts.
            t = horizon_s;
        }
        // Skip failures that occurred while we were rolled back anyway.
        while fi < failures.len() && failures[fi].0.as_secs_f64() <= t {
            fi += 1;
        }
    }
    useful / horizon_s
}

fn main() {
    let inv = Inventory::frontier();
    let fits = FitModel::frontier();
    let mtti = analytic_mtti(&inv, &fits);
    let write_s = 180.0; // 700 TiB to Orion
    let horizon_h = 24.0 * 7.0;
    println!(
        "machine MTTI {:.2} h; checkpoint write {:.0} s; horizon {:.0} h",
        mtti.mtti_hours, write_s, horizon_h
    );

    let failures = failure_schedule(&inv, &fits, horizon_h, 99);
    println!("failures injected over the week: {}", failures.len());

    let daly = checkpoint::daly_interval(write_s, mtti.mtti_hours * 3600.0);
    println!(
        "\n{:>14} | {:>10} | {:>10}",
        "interval", "measured", "Daly model"
    );
    let mut best = (0.0f64, 0.0f64);
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let interval = daly * factor;
        let measured = replay(interval, write_s, &failures, horizon_h * 3600.0);
        let predicted = checkpoint::machine_efficiency(write_s, mtti.mtti_hours * 3600.0, interval);
        println!(
            "{:>11.0} min | {:>9.1}% | {:>9.1}%{}",
            interval / 60.0,
            measured * 100.0,
            predicted * 100.0,
            if factor == 1.0 {
                "   <- Young/Daly optimum"
            } else {
                ""
            }
        );
        if measured > best.1 {
            best = (interval, measured);
        }
    }
    println!(
        "\nbest measured interval {:.0} min ({:.1}% useful) — the optimum is flat near tau*",
        best.0 / 60.0,
        best.1 * 100.0
    );
}
