//! Network study: the Fig. 6 mpiGraph comparison, routing-policy effects,
//! and the taper ablation, on a ratio-preserving reduced dragonfly.
//!
//! ```text
//! cargo run --release --example network_study            # reduced fabric
//! cargo run --release --example network_study -- --full  # all 9,472 nodes
//! ```

use frontier::fabric::dragonfly::{Dragonfly, DragonflyParams};
use frontier::fabric::fattree::{FatTree, FatTreeParams};
use frontier::fabric::mpigraph;
use frontier::fabric::patterns::all_to_all_throughput;
use frontier::fabric::routing::RoutePolicy;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (df, ft) = if full {
        (Dragonfly::frontier(), FatTree::summit())
    } else {
        (
            Dragonfly::build(DragonflyParams::scaled(16, 8, 8)),
            FatTree::build(FatTreeParams::scaled(32, 32)),
        )
    };
    println!(
        "dragonfly: {} endpoints over {} groups; taper {:.0}%",
        df.params().total_endpoints(),
        df.params().groups,
        df.taper() * 100.0
    );

    println!("\n== mpiGraph (Fig. 6) ==");
    let frontier = mpigraph::run_dragonfly(&df, RoutePolicy::adaptive_default(), 7);
    println!(
        "{}",
        frontier.histogram(20.0, 40).render(
            60,
            &format!(
                "Frontier-style dragonfly (mean {:.1} GB/s, sd {:.1})",
                frontier.summary.mean, frontier.summary.std_dev
            )
        )
    );
    let summit = mpigraph::run_fattree(&ft, 7);
    println!(
        "{}",
        summit.histogram(12.5, 25).render(
            60,
            &format!(
                "Summit-style fat-tree (mean {:.1} GB/s, sd {:.2})",
                summit.summary.mean, summit.summary.std_dev
            )
        )
    );

    println!("== routing policy effect on random pairs ==");
    for (name, policy) in [
        ("minimal", RoutePolicy::Minimal),
        ("adaptive", RoutePolicy::adaptive_default()),
        ("valiant", RoutePolicy::Valiant),
    ] {
        let r = mpigraph::run_dragonfly(&df, policy, 11);
        println!(
            "  {name:<8}: mean {:>5.2} GB/s, p50 {:>5.2}, min {:>5.2}, max {:>5.2}",
            r.summary.mean, r.summary.p50, r.summary.min, r.summary.max
        );
    }

    println!("\n== taper ablation (bundle size between group pairs) ==");
    for bundles in [1usize, 2, 4] {
        let mut p = DragonflyParams::frontier();
        p.bundles_per_group_pair = bundles;
        let d = Dragonfly::build(p);
        let t = all_to_all_throughput(&d, 1.0);
        println!(
            "  bundles={bundles}: taper {:>5.1}%, all-to-all {:>5.1} GB/s/node{}",
            d.taper() * 100.0,
            t.per_node.as_gb_s(),
            if bundles == 2 {
                "   <- as deployed"
            } else {
                ""
            }
        );
    }
}
