//! Scheduler study: run a mixed job stream through the Slurm-like
//! scheduler on a reduced dragonfly and compare the pack/spread placement
//! policies (§3.4.2).
//!
//! ```text
//! cargo run --release --example job_scheduling
//! ```

use frontier::fabric::dragonfly::{Dragonfly, DragonflyParams};
use frontier::prelude::*;
use frontier::sched::placement::{allocate, placement_metrics, PlacementPolicy};
use frontier::sched::slurm::Scheduler;
use std::collections::BTreeSet;

fn main() {
    // 16 groups x 8 switches x 8 endpoints, 4 NICs/node -> 256 nodes.
    let params = DragonflyParams::scaled(16, 8, 8);

    println!("== placement quality: pack vs spread ==");
    let df = Dragonfly::build(params.clone());
    let free: BTreeSet<usize> = (0..df.params().total_nodes()).collect();
    for nodes in [8usize, 16, 64, 128] {
        for policy in [PlacementPolicy::Pack, PlacementPolicy::Spread] {
            let a = allocate(&df, &free, nodes, policy).expect("machine empty");
            let m = placement_metrics(&df, &a);
            println!(
                "  {nodes:>4} nodes {policy:>7?}: {:>2} groups, minimal global bw {:>8.1} GB/s, {:>5.1}% intra-group pairs",
                m.groups_spanned,
                m.minimal_global_bandwidth.as_gb_s(),
                m.intra_group_pair_fraction * 100.0
            );
        }
    }

    println!("\n== a day of mixed jobs through the scheduler ==");
    let df = Dragonfly::build(params);
    let mut sched = Scheduler::new(df, PlacementPolicy::TopologyAware);
    let mut rng = StreamRng::from_seed(2023);
    // A log-normal-ish mix: mostly small jobs, a few hero runs.
    let mut submitted = 0usize;
    for i in 0..60 {
        let nodes = if i % 12 == 0 {
            128 + rng.index(64) // hero job: half the machine or more
        } else {
            1 + rng.index(24)
        };
        let hours = 0.5 + rng.uniform() * 3.0;
        sched.submit(nodes, SimTime::from_secs_f64(hours * 3600.0));
        submitted += 1;
    }
    let makespan = sched.run_to_completion();
    println!(
        "  submitted {submitted} jobs; makespan {:.1} h",
        makespan.as_secs_f64() / 3600.0
    );
    println!("  completed: {}", sched.completed().len());
    assert_eq!(sched.completed().len(), submitted);

    // Show where the first hero job landed.
    let hero = sched
        .completed()
        .iter()
        .map(|&id| sched.job(id))
        .find(|j| j.nodes >= 128)
        .expect("a hero job ran");
    let m = placement_metrics(sched.dragonfly(), &hero.allocation);
    println!(
        "  hero job ({} nodes) spread over {} groups with {:.1} TB/s of minimal-path global bandwidth",
        hero.nodes,
        m.groups_spanned,
        m.minimal_global_bandwidth.as_tb_s()
    );
}
