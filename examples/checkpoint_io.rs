//! Checkpoint I/O study: drive the node-local and Orion storage models
//! through the §4.3 scenarios and plan an optimal checkpoint cadence
//! against the machine's MTTI.
//!
//! ```text
//! cargo run --release --example checkpoint_io
//! ```

use frontier::prelude::*;
use frontier::resilience::checkpoint;
use frontier::resilience::fit::{FitModel, Inventory};
use frontier::resilience::mtti::analytic_mtti;
use frontier::storage::fio::{run, FioJob};
use frontier::storage::nodelocal::NodeLocalStorage;
use frontier::storage::orion::{Orion, OrionTier};
use frontier::storage::workload::analyze_checkpoint;

fn main() {
    println!("== node-local burst buffer (fio, §4.3.1) ==");
    let nl = NodeLocalStorage::frontier();
    let read = run(&nl, &FioJob::seq_read(Bytes::gib(64)));
    let write = run(&nl, &FioJob::seq_write(Bytes::gib(64)));
    let iops = run(&nl, &FioJob::rand_read_4k(8_000_000));
    println!("  seq read : {:>5.1} GB/s", read.bandwidth.as_gb_s());
    println!("  seq write: {:>5.1} GB/s", write.bandwidth.as_gb_s());
    println!("  4k rand  : {:>5.2} M IOPS", iops.iops / 1e6);

    println!("\n== Orion tiers (§4.3.2) ==");
    let orion = Orion::frontier();
    for (name, tier) in [
        ("metadata (DoM)", OrionTier::Metadata),
        ("performance   ", OrionTier::Performance),
        ("capacity      ", OrionTier::Capacity),
    ] {
        println!(
            "  {name}: {:>7.1} PB, read {:>5.1} TB/s, write {:>5.1} TB/s",
            orion.capacity(tier).as_pb(),
            orion.measured_read(tier).as_tb_s(),
            orion.measured_write(tier).as_tb_s()
        );
    }

    println!("\n== file-size routing through the PFL ==");
    for size in [
        Bytes::kib(64),
        Bytes::kib(256),
        Bytes::mib(1),
        Bytes::mib(8),
        Bytes::gib(1),
        Bytes::gib(64),
    ] {
        let split = orion.layout().split(size);
        println!(
            "  {:>9}: DoM {:>9}, flash {:>9}, disk {:>9} -> {:>7.2} TB/s aggregate write",
            size.to_string(),
            split.dom.to_string(),
            split.performance.to_string(),
            split.capacity.to_string(),
            orion.file_write_bandwidth(size).as_tb_s()
        );
    }

    println!("\n== the paper's checkpoint arithmetic ==");
    let a = analyze_checkpoint(
        &orion,
        Bytes::gib(512) * 9_472,
        0.15,
        SimTime::from_secs(3600),
        Bytes::gib(8),
    );
    println!(
        "  15% of 4.6 PiB HBM = {:.0} TiB -> ingested in {:.0} s = {:.1}% of each hour",
        a.bytes.as_tib(),
        a.ingest_time.as_secs_f64(),
        a.io_fraction * 100.0
    );

    println!("\n== Young/Daly cadence against the modelled MTTI ==");
    let mtti = analytic_mtti(&Inventory::frontier(), &FitModel::frontier());
    let plan = checkpoint::plan(a.ingest_time.as_secs_f64(), mtti.mtti_hours * 3600.0);
    println!(
        "  MTTI {:.2} h -> checkpoint every {:.0} min -> {:.1}% machine efficiency",
        mtti.mtti_hours,
        plan.interval_s / 60.0,
        plan.efficiency * 100.0
    );
    let improved = analytic_mtti(&Inventory::frontier(), &FitModel::frontier().improved_10x());
    let plan2 = checkpoint::plan(a.ingest_time.as_secs_f64(), improved.mtti_hours * 3600.0);
    println!(
        "  at 10x-better FIT rates ({:.0} h MTTI): every {:.0} min -> {:.1}%",
        improved.mtti_hours,
        plan2.interval_s / 60.0,
        plan2.efficiency * 100.0
    );
}
