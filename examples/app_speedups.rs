//! Application speedups: evaluate the CAAR (Table 6) and ECP (Table 7)
//! proxy models, show the hardware/software split behind each number, and
//! the weak-scaling curves of §4.4.
//!
//! ```text
//! cargo run --release --example app_speedups
//! ```

use frontier::apps::caar::caar_apps;
use frontier::apps::caar::caar_results;
use frontier::apps::ecp::{ecp_apps, ecp_results};
use frontier::apps::fom::render_table;
use frontier::apps::machine::MachineModel;
use frontier::apps::scaling::WeakScalingModel;

fn main() {
    let frontier = MachineModel::frontier();

    println!(
        "{}",
        render_table(
            "Table 6: CAAR applications (target 4x over Summit)",
            &caar_results(&frontier)
        )
    );
    println!(
        "{}",
        render_table(
            "Table 7: ECP applications (target 50x)",
            &ecp_results(&frontier)
        )
    );

    println!("== where each CAAR speedup comes from ==");
    for app in caar_apps() {
        println!(
            "  {:<9} {:>5.2}x = hardware {:>5.2}x x software {:>5.2}x",
            app.name,
            app.speedup(&frontier),
            app.hardware_ratio(&frontier),
            app.software_factor
        );
        println!("            ({})", app.software_attribution);
    }

    println!("\n== where each ECP speedup comes from ==");
    for app in ecp_apps() {
        println!(
            "  {:<14} {:>6.1}x = hardware {:>6.1}x x software {:>5.2}x vs {}",
            app.name,
            app.speedup(&frontier),
            app.hardware_ratio(&frontier),
            app.software_factor,
            app.baseline.name
        );
    }

    println!("\n== weak-scaling efficiency curves (§4.4) ==");
    let curves = [
        WeakScalingModel::warpx_frontier(),
        WeakScalingModel::shift_frontier(),
        WeakScalingModel::athenapk_frontier(),
        WeakScalingModel::picongpu_frontier(),
        WeakScalingModel::athenapk_summit(),
    ];
    print!("{:>22}", "nodes:");
    for n in [64usize, 512, 4096, 9216] {
        print!("{n:>9}");
    }
    println!();
    for c in &curves {
        print!("{:>22}", c.name);
        for n in [64usize, 512, 4096, 9216] {
            print!("{:>8.1}%", c.efficiency(n) * 100.0);
        }
        println!();
    }
    println!(
        "\n(AthenaPK: 96% on Frontier vs 48% on Summit at scale — the paper's NIC-per-GPU point)"
    );
}
