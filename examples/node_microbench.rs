//! Node micro-benchmarks: the §4.1/§4.2.1 suite on one Bard Peak node —
//! CPU and GPU STREAM, the CoralGemm sweep, and the xGMI transfer study.
//!
//! ```text
//! cargo run --release --example node_microbench
//! ```

use frontier::node::dram::{DramConfig, DramSystem, NpsMode, StoreMode};
use frontier::node::gemm::{GemmModel, Precision};
use frontier::node::hbm::HbmStack;
use frontier::node::stream::{cpu_stream, gpu_stream};
use frontier::node::transfer::{TransferEngine, TransferKind};
use frontier::prelude::*;

fn main() {
    let dram = DramSystem::new(DramConfig::trento());

    println!("== CPU STREAM (Table 3), NPS-4 ==");
    for (label, mode) in [
        ("temporal", StoreMode::Temporal),
        ("non-temporal", StoreMode::NonTemporal),
    ] {
        println!("-- {label} stores --");
        for r in cpu_stream(&dram, mode, NpsMode::Nps4) {
            println!(
                "  {:<6} {:>9.1} MB/s",
                r.kernel.cpu_name(),
                r.bandwidth.as_mb_s()
            );
        }
    }

    println!("\n== NPS ablation (non-temporal Triad) ==");
    for nps in [NpsMode::Nps4, NpsMode::Nps1] {
        let rs = cpu_stream(&dram, StoreMode::NonTemporal, nps);
        println!(
            "  {:?}: {:>6.1} GB/s, loaded latency {}",
            nps,
            rs[3].bandwidth.as_gb_s(),
            dram.loaded_latency(nps)
        );
    }

    println!("\n== GPU STREAM on one GCD (Table 4) ==");
    let hbm = HbmStack::mi250x_gcd();
    for r in gpu_stream(&hbm) {
        println!(
            "  {:<6} {:>10.1} MB/s",
            r.kernel.gpu_name(),
            r.bandwidth.as_mb_s()
        );
    }

    println!("\n== CoralGemm sweep (Fig. 3) ==");
    let gemm = GemmModel::mi250x_gcd();
    println!("  {:>6} {:>8} {:>8} {:>8}", "N", "FP64", "FP32", "FP16");
    for n in [1024usize, 2048, 4096, 8192, 14336] {
        println!(
            "  {:>6} {:>8.1} {:>8.1} {:>8.1}",
            n,
            gemm.run(n, Precision::Fp64).achieved.as_tf(),
            gemm.run(n, Precision::Fp32).achieved.as_tf(),
            gemm.run(n, Precision::Fp16).achieved.as_tf()
        );
    }
    println!(
        "  (GCD FP64 vector peak is {:.2} TF/s — the FP64 GEMM exceeds it via matrix cores)",
        gemm.vector_peak(Precision::Fp64).as_tf()
    );

    println!("\n== xGMI transfers (Figs. 4-5) ==");
    let engine = TransferEngine::bard_peak();
    println!(
        "  single-rank host->GCD : {:>6.1} GB/s (71% of the 36 GB/s xGMI 2.0 lane)",
        engine.h2d_single_rank().as_gb_s()
    );
    println!(
        "  8 ranks aggregate     : {:>6.1} GB/s (DDR-limited)",
        engine.h2d_aggregate(&dram, NpsMode::Nps4, 8).as_gb_s()
    );
    for (a, b, label) in [
        (0usize, 3usize, "1 xGMI link"),
        (0, 4, "2 links"),
        (0, 1, "4 links"),
    ] {
        let cu = engine.peer_bandwidth(a, b, TransferKind::CuKernel).unwrap();
        let sdma = engine.peer_bandwidth(a, b, TransferKind::Sdma).unwrap();
        println!(
            "  GCD{a}->GCD{b} ({label:<11}): CU {:>6.1} GB/s | SDMA {:>5.1} GB/s",
            cu.as_gb_s(),
            sdma.as_gb_s()
        );
    }

    // Finite-size ramp for one pair, like the x-axis of Fig. 5.
    println!("\n  transfer-size ramp, GCD0->GCD1 CU kernel:");
    for exp in [16u32, 20, 24, 28] {
        let size = Bytes::new(1 << exp);
        let bw = engine
            .peer_transfer_bandwidth(0, 1, TransferKind::CuKernel, size)
            .unwrap();
        println!("    {:>8} : {:>6.1} GB/s", size.to_string(), bw.as_gb_s());
    }
}
